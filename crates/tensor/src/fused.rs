//! Cache-resident fused execution of one SkyNet bundle:
//! `DW-Conv3 → BN → Act → PW-Conv → BN → Act` in a single pass over row
//! tiles.
//!
//! The unfused path materializes five full feature maps per bundle
//! (DW output, two BN outputs, two activation outputs) and streams each
//! through DRAM between layers. This executor instead walks the output
//! in **row bands**: for each `(item, band)` task the DW-Conv3 output
//! tile (all `C` channels × `R` rows) is produced straight into the
//! thread-local [`scratch`] arena with the BN+activation epilogue fused
//! into the store loop ([`crate::dwconv`]'s fused band kernel), then fed
//! directly into the point-wise matmul whose output tile gets the second
//! BN+activation epilogue before the only DRAM write — the final output
//! rows. The full-size intermediates never exist.
//!
//! ## Bit-identity
//!
//! The fused output is **bit-identical** to the unfused layer-by-layer
//! path on every `SKYNET_SIMD` backend and thread count, because each
//! stage reuses the unfused kernels' exact per-element f32 operation
//! sequences and none of them depends on position or tile extent:
//!
//! * DW rows are row-local (output row `y` reads input rows
//!   `y·s − p ..= y·s − p + 2` only) and replay `dw_plane_fwd`'s
//!   border/interior split per row;
//! * the BN+activation epilogues replay `bn_apply_eval` +
//!   `relu/relu6`'s per-element sequence, which is independent of the
//!   vector/tail boundary ([`simd::bn_act_inplace`]);
//! * [`matmul_acc`](crate::matmul::matmul_acc) accumulates each output
//!   element over `k` in a fixed ascending chain, independent of the
//!   column count of the call — so a band tile (`n = R·W`) produces the
//!   same bits as the whole plane (`n = H·W`);
//! * the band decomposition is a fixed function of the shape, never of
//!   the thread count.
//!
//! `core::plan` drives this executor from the graph-level execution
//! plan; [`crate::fusion`] (`SKYNET_FUSION`) toggles it, keeping the
//! unfused path as the equivalence oracle.
//!
//! ## The INT8 twin
//!
//! [`qfused_bundle_forward`] is the quantized counterpart: one
//! `DW-Conv3_i8 → requant → PW_i8 → requant` pass per row band, with
//! the `i32` DW accumulator tile, its requantized `i8` activations,
//! and the PW `i32` tile all resident in the scratch arena, and the
//! shared [`requant_i8`] epilogue folded into
//! the output store loop (output rows of a band are contiguous per
//! channel, so requantizing *into the output map* is the store). The
//! unfused quantized path materializes an `i32` + `i8` full map after
//! DW and an `i32` full map after PW; the fused pass writes only the
//! final `i8` rows. Bit-identity here is even simpler than the f32
//! argument: every accumulator is an exact integer sum (any grouping
//! of wrapping adds agrees), DW rows are row-local, each PW output
//! element reduces over `k` in ascending order regardless of the band
//! column count, and requantization is per-element.

use crate::conv::{pw_bnact_tile, ConvGeometry};
use crate::dwconv::dw3_bnact_band;
use crate::qint::{dw_plane_rows, matmul_i8_rows, requant_i8};
use crate::{parallel, scratch, simd, telemetry};
use crate::{Result, Shape, Tensor, TensorError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-channel BatchNorm-eval + activation epilogue parameters, captured
/// at plan-build time from a `BatchNorm2d` + `Activation` pair.
///
/// `inv_std[c]` is computed as `1.0 / (var[c] + eps).sqrt()` — the exact
/// f32 expression the unfused BN eval path evaluates per forward — so
/// the epilogue `y = γ·(x − μ)·inv_std + β` reproduces its bits.
#[derive(Debug, Clone)]
pub struct BnAct {
    /// Per-channel running mean `μ`.
    pub mean: Vec<f32>,
    /// Per-channel `1/√(σ² + ε)`, precomputed from the running variance.
    pub inv_std: Vec<f32>,
    /// Per-channel scale `γ`.
    pub gamma: Vec<f32>,
    /// Per-channel shift `β`.
    pub beta: Vec<f32>,
    /// Activation ceiling: `6.0` for ReLU6, `f32::INFINITY` for ReLU
    /// (value-neutral upper clamp).
    pub ceiling: f32,
}

impl BnAct {
    /// Builds the epilogue from BN statistics and an activation ceiling
    /// (`None` = plain ReLU).
    pub fn new(
        mean: Vec<f32>,
        var: &[f32],
        eps: f32,
        gamma: Vec<f32>,
        beta: Vec<f32>,
        ceiling: Option<f32>,
    ) -> Self {
        let inv_std = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        BnAct {
            mean,
            inv_std,
            gamma,
            beta,
            ceiling: ceiling.unwrap_or(f32::INFINITY),
        }
    }

    /// Number of channels this epilogue covers.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    fn check(&self, c: usize, which: &'static str) -> Result<()> {
        if self.mean.len() != c
            || self.inv_std.len() != c
            || self.gamma.len() != c
            || self.beta.len() != c
        {
            return Err(TensorError::ShapeMismatch {
                op: "fused_bundle_forward",
                expected: format!("{which} epilogue over {c} channels"),
                got: format!("{} channels", self.mean.len()),
            });
        }
        Ok(())
    }

    /// The `(mean, inv_std, gamma, beta, ceiling)` tuple for channel `c`.
    #[inline]
    pub fn channel(&self, c: usize) -> (f32, f32, f32, f32, f32) {
        (
            self.mean[c],
            self.inv_std[c],
            self.gamma[c],
            self.beta[c],
            self.ceiling,
        )
    }
}

/// `*mut f32` wrapper for the disjoint per-task output writes.
struct SendPtr(*mut f32);
// SAFETY: each `(item, band)` task writes a disjoint set of output rows
// (the decomposition partitions `item × band`), so sharing the base
// pointer across the pool is race-free.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Whole-struct access so closures capture `SendPtr` (which is
    /// `Sync`), not the raw pointer field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Row-band height for a fused bundle: a **fixed function of the shape**
/// (never the thread count), chosen so the DW and PW tiles together stay
/// cache-resident while still yielding enough `(item, band)` tasks to
/// feed the pool.
fn band_rows(c: usize, c2: usize, os: Shape) -> usize {
    // Both tiles live in L2: (c + c2) · R · W floats ≲ 384 KiB.
    const TILE_F32_BUDGET: usize = 96 * 1024;
    let per_row = (c + c2) * os.w.max(1);
    let r_cache = (TILE_F32_BUDGET / per_row).max(1);
    // At least ~8 bands per item so single-image inference parallelizes.
    let r_par = os.h.div_ceil(8).max(1);
    r_cache.min(r_par).min(os.h.max(1))
}

/// Executes one fused bundle: `DW-Conv3(w_dw) → BN₁ → Act → PW(w_pw) →
/// BN₂ → Act`, bit-identical to the unfused layer sequence (see the
/// module docs) while keeping every intermediate tile in the scratch
/// arena.
///
/// `dw_weight` is `[c, 1, 3, 3]`, `pw_weight` is `[c2, c, 1, 1]`
/// (bias-free, as in the SkyNet bundle), `bn1`/`bn2` cover `c`/`c2`
/// channels.
///
/// # Errors
///
/// Returns a [`TensorError`] when the geometry is not a 3×3 stride-1/2
/// depth-wise convolution or any shape disagrees.
pub fn fused_bundle_forward(
    input: &Tensor,
    dw_weight: &Tensor,
    dw_geo: ConvGeometry,
    bn1: &BnAct,
    pw_weight: &Tensor,
    bn2: &BnAct,
) -> Result<Tensor> {
    let is = input.shape();
    let c = is.c;
    let (k, s, p) = (dw_geo.kernel, dw_geo.stride, dw_geo.pad);
    if k != 3 || (s != 1 && s != 2) {
        return Err(TensorError::InvalidDimension {
            op: "fused_bundle_forward",
            detail: format!("unsupported DW geometry k={k} s={s} (expected k=3, s=1|2)"),
        });
    }
    let dws = dw_weight.shape();
    if dws.n != c || dws.c != 1 || dws.h != 3 || dws.w != 3 {
        return Err(TensorError::ShapeMismatch {
            op: "fused_bundle_forward",
            expected: format!("DW weight [{c}, 1, 3, 3]"),
            got: dws.to_string(),
        });
    }
    let pws = pw_weight.shape();
    let c2 = pws.n;
    if pws.c != c || pws.h != 1 || pws.w != 1 {
        return Err(TensorError::ShapeMismatch {
            op: "fused_bundle_forward",
            expected: format!("PW weight [c2, {c}, 1, 1]"),
            got: pws.to_string(),
        });
    }
    bn1.check(c, "BN1")?;
    bn2.check(c2, "BN2")?;
    let os_dw = dw_geo.out_shape(is, c);
    let os = Shape::new(is.n, c2, os_dw.h, os_dw.w);
    let mut out = Tensor::zeros(os);

    let r = band_rows(c, c2, os_dw);
    let nbands = os_dw.h.div_ceil(r).max(1);
    let tasks = is.n * nbands;

    let _span = telemetry::span("tensor.fused_fwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.fused.fwd_calls").inc();
        let dw_flops = 2 * os_dw.numel() * 9;
        let pw_flops = 2 * os.numel() * c;
        telemetry::counter("tensor.fused.fwd_flops").add((dw_flops + pw_flops) as u64);
        telemetry::counter("fusion.bundles_executed").inc();
        // The five per-bundle intermediates the unfused path writes to
        // (and re-reads from) memory: DW out, BN1 out, Act1 out (c
        // planes each), PW out, BN2 out (c2 planes each).
        let saved = (3 * c + 2 * c2) * os_dw.plane() * is.n * std::mem::size_of::<f32>();
        telemetry::counter("fusion.dram_bytes_saved").add(saved as u64);
        telemetry::record_gauge("fusion.band_rows", r as f64);
        simd::record_lanes(
            "fused_fwd",
            is.n * c * os_dw.h * simd::vector_cover(os_dw.w),
        );
    }

    let be = simd::active();
    let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
    let x = input.as_slice();
    let dw_w = dw_weight.as_slice();
    let pw_w = pw_weight.as_slice();
    let in_plane = is.plane();
    let out_plane = os.plane();

    parallel::run_indexed(tasks, |t| {
        let item = t / nbands;
        let band = t % nbands;
        let y0 = band * r;
        let y1 = (y0 + r).min(os_dw.h);
        let l = (y1 - y0) * os_dw.w;
        // Fixed-capacity checkouts (`r`, not `y1-y0`) so every band hits
        // the same arena size class.
        let mut dw_tile = scratch::checkout("tensor.fused_fwd", c * r * os_dw.w);
        let mut pw_tile = scratch::checkout("tensor.fused_fwd", c2 * r * os_dw.w);
        for ch in 0..c {
            let chan_in = &x[(item * c + ch) * in_plane..(item * c + ch + 1) * in_plane];
            dw3_bnact_band(
                be,
                &mut dw_tile[ch * l..(ch + 1) * l],
                chan_in,
                &dw_w[ch * 9..(ch + 1) * 9],
                0.0,
                is,
                os_dw,
                s,
                p,
                (y0, y1),
                bn1.channel(ch),
            );
        }
        pw_bnact_tile(
            pw_w,
            &dw_tile[..c * l],
            &mut pw_tile[..c2 * l],
            c2,
            c,
            l,
            bn2,
        );
        for oc in 0..c2 {
            // SAFETY: `(item, band)` tasks partition the output rows, so
            // this range is written by exactly one task; the range is in
            // bounds by the shape arithmetic above.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    out_ptr.get().add((item * c2 + oc) * out_plane + y0 * os.w),
                    l,
                )
            };
            dst.copy_from_slice(&pw_tile[oc * l..(oc + 1) * l]);
        }
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// The INT8 fused bundle
// ---------------------------------------------------------------------------

/// Per-output-channel requantization epilogue of one quantized stage,
/// borrowed from the owning layer at call time: channel `c`'s raw `i32`
/// accumulators are mapped through
/// `clamp(round(clamp(acc·mult[c] + bias[c], act) / out_scale), ±127)`
/// — exactly [`requant_i8`]'s sequence.
#[derive(Debug, Clone, Copy)]
pub struct QEpilogue<'a> {
    /// Per-channel `in_scale · w_scale` dequantization multiplier.
    pub mult: &'a [f32],
    /// Per-channel (BN-folded) f32 bias.
    pub bias: &'a [f32],
    /// Optional fused activation clamp `(lo, hi)`.
    pub clamp: Option<(f32, f32)>,
    /// The produced activations' quantization scale.
    pub out_scale: f32,
}

/// Saturation counts of one fused bundle execution, per stage — the
/// caller publishes them as `quant.<op>.saturated` counters exactly as
/// the unfused stages do. Totals are sums over bands, so they are
/// independent of the band decomposition and thread schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QFusedSats {
    /// `i8` clamp count of the DW requantization.
    pub dw: u64,
    /// `i8` clamp count of the PW requantization.
    pub pw: u64,
}

/// `*mut i8` wrapper for the disjoint per-task output row writes (the
/// INT8 sibling of [`SendPtr`], same disjointness argument).
struct SendPtrI8(*mut i8);
// SAFETY: each `(item, band)` task writes a disjoint set of output rows.
unsafe impl Send for SendPtrI8 {}
unsafe impl Sync for SendPtrI8 {}

impl SendPtrI8 {
    fn get(&self) -> *mut i8 {
        self.0
    }
}

/// Row-band height for a fused INT8 bundle: the same L2-residency rule
/// as [`band_rows`], counted in bytes — per output row the band holds
/// `c` `i32` + `c` `i8` DW lanes and `c2` `i32` PW lanes.
fn qband_rows(c: usize, c2: usize, h: usize, w: usize) -> usize {
    const TILE_BYTE_BUDGET: usize = 384 * 1024;
    let per_row = (5 * c + 4 * c2) * w.max(1);
    let r_cache = (TILE_BYTE_BUDGET / per_row).max(1);
    let r_par = h.div_ceil(8).max(1);
    r_cache.min(r_par).min(h.max(1))
}

/// Executes one quantized bundle — `DW-Conv3_i8 → requant_i8 → PW_i8 →
/// requant_i8` — in a single cache-resident pass per row band,
/// bit-identical to the unfused quantized stage pair (see the module
/// docs).
///
/// `x` is the `n×c×h×w` input activations (`shape`); `dw_weight` holds
/// `c` 9-tap filters; `pw_weight` is `c2×c` row-major; `out` receives
/// the `n×c2×h×w` output activations (the quantized DW geometry is
/// always stride-1 pad-1, so spatial extents are preserved). The
/// epilogues cover `c` and `c2` channels respectively.
///
/// Returns the per-stage saturation counts.
///
/// # Errors
///
/// Returns a [`TensorError`] when any slice or epilogue disagrees with
/// the shape arithmetic.
#[allow(clippy::too_many_arguments)]
pub fn qfused_bundle_forward(
    x: &[i8],
    shape: Shape,
    dw_weight: &[i8],
    dw_ep: &QEpilogue<'_>,
    pw_weight: &[i8],
    c2: usize,
    pw_ep: &QEpilogue<'_>,
    out: &mut [i8],
) -> Result<QFusedSats> {
    let (n, c, h, w) = (shape.n, shape.c, shape.h, shape.w);
    let plane = h * w;
    let check = |ok: bool, expected: String, got: String| {
        if ok {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                op: "qfused_bundle_forward",
                expected,
                got,
            })
        }
    };
    check(
        x.len() >= n * c * plane,
        format!("input of {} i8s", n * c * plane),
        format!("{}", x.len()),
    )?;
    check(
        dw_weight.len() >= c * 9,
        format!("DW weight of {} taps", c * 9),
        format!("{}", dw_weight.len()),
    )?;
    check(
        pw_weight.len() >= c2 * c,
        format!("PW weight of {} i8s", c2 * c),
        format!("{}", pw_weight.len()),
    )?;
    check(
        out.len() >= n * c2 * plane,
        format!("output of {} i8s", n * c2 * plane),
        format!("{}", out.len()),
    )?;
    check(
        dw_ep.mult.len() == c && dw_ep.bias.len() == c,
        format!("DW epilogue over {c} channels"),
        format!("{}/{} channels", dw_ep.mult.len(), dw_ep.bias.len()),
    )?;
    check(
        pw_ep.mult.len() == c2 && pw_ep.bias.len() == c2,
        format!("PW epilogue over {c2} channels"),
        format!("{}/{} channels", pw_ep.mult.len(), pw_ep.bias.len()),
    )?;
    if n * c2 * plane == 0 {
        return Ok(QFusedSats { dw: 0, pw: 0 });
    }

    let r = qband_rows(c, c2, h, w);
    let nbands = h.div_ceil(r).max(1);
    let tasks = n * nbands;

    let _span = telemetry::span("tensor.qfused_fwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("quant.fused.fwd_calls").inc();
        telemetry::counter("quant.fused.bundles_executed").inc();
        // The unfused quantized stage pair materializes an i32 + i8 DW
        // full map and an i32 PW full map; the fused pass writes none
        // of them.
        let saved = (5 * c + 4 * c2) * plane * n;
        telemetry::counter("quant.fused.dram_bytes_saved").add(saved as u64);
        telemetry::record_gauge("quant.fused.band_rows", r as f64);
    }

    let be = simd::active();
    let out_ptr = SendPtrI8(out.as_mut_ptr());
    let dw_sat = AtomicU64::new(0);
    let pw_sat = AtomicU64::new(0);

    parallel::run_indexed(tasks, |t| {
        let item = t / nbands;
        let band = t % nbands;
        let y0 = band * r;
        let y1 = (y0 + r).min(h);
        let l = (y1 - y0) * w;
        // Fixed-capacity checkouts (`r`, not `y1-y0`) so every band hits
        // the same arena size class.
        let mut dw_acc = scratch::checkout_i32("tensor.qfused_fwd", c * r * w);
        let mut dw_q = scratch::checkout_i8("tensor.qfused_fwd", c * r * w);
        let mut pw_acc = scratch::checkout_i32("tensor.qfused_fwd", c2 * r * w);
        let (mut sat_dw, mut sat_pw) = (0u64, 0u64);
        for ch in 0..c {
            let chan_in = &x[(item * c + ch) * plane..(item * c + ch + 1) * plane];
            // dw_plane_rows overwrites, so the dirty checkout is fine.
            dw_plane_rows(
                be,
                chan_in,
                &dw_weight[ch * 9..ch * 9 + 9],
                &mut dw_acc[ch * l..(ch + 1) * l],
                h,
                w,
                y0,
                y1,
            );
            sat_dw += requant_i8(
                &dw_acc[ch * l..(ch + 1) * l],
                dw_ep.mult[ch],
                dw_ep.bias[ch],
                dw_ep.clamp,
                dw_ep.out_scale,
                &mut dw_q[ch * l..(ch + 1) * l],
            );
        }
        pw_acc[..c2 * l].fill(0);
        matmul_i8_rows(
            be,
            pw_weight,
            &dw_q[..c * l],
            &mut pw_acc[..c2 * l],
            c2,
            c,
            l,
        );
        for oc in 0..c2 {
            // SAFETY: `(item, band)` tasks partition the output rows, so
            // this range is written by exactly one task; in bounds by the
            // shape arithmetic above. Rows `y0..y1` of plane `oc` are
            // contiguous, so requantizing into this slice *is* the store
            // loop — no staging copy.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    out_ptr.get().add((item * c2 + oc) * plane + y0 * w),
                    l,
                )
            };
            sat_pw += requant_i8(
                &pw_acc[oc * l..(oc + 1) * l],
                pw_ep.mult[oc],
                pw_ep.bias[oc],
                pw_ep.clamp,
                pw_ep.out_scale,
                dst,
            );
        }
        // u64 sums are commutative, so the totals are schedule-independent.
        dw_sat.fetch_add(sat_dw, Ordering::Relaxed);
        pw_sat.fetch_add(sat_pw, Ordering::Relaxed);
    });
    Ok(QFusedSats {
        dw: dw_sat.into_inner(),
        pw: pw_sat.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dwconv::dwconv2d;
    use crate::rng::SkyRng;
    use crate::{conv::conv2d, ops};

    fn rand_tensor(rng: &mut SkyRng, s: Shape) -> Tensor {
        let mut t = Tensor::zeros(s);
        for v in t.as_mut_slice() {
            *v = rng.range(-1.0, 1.0);
        }
        t
    }

    /// The unfused oracle: the exact layer sequence a bundle runs.
    fn unfused(
        x: &Tensor,
        dw_w: &Tensor,
        geo: ConvGeometry,
        bn1: &BnAct,
        pw_w: &Tensor,
        bn2: &BnAct,
    ) -> Tensor {
        let apply_bn_act = |t: &Tensor, bn: &BnAct| {
            let s = t.shape();
            let mut y = Tensor::zeros(s);
            for n in 0..s.n {
                for ch in 0..s.c {
                    let o = (n * s.c + ch) * s.plane();
                    crate::simd::bn_apply_eval(
                        &t.as_slice()[o..o + s.plane()],
                        &mut y.as_mut_slice()[o..o + s.plane()],
                        bn.mean[ch],
                        bn.inv_std[ch],
                        bn.gamma[ch],
                        bn.beta[ch],
                    );
                }
            }
            if bn.ceiling.is_finite() {
                ops::relu6(&y)
            } else {
                ops::relu(&y)
            }
        };
        let t = dwconv2d(x, dw_w, None, geo).unwrap();
        let t = apply_bn_act(&t, bn1);
        let t = conv2d(&t, pw_w, None, ConvGeometry::pointwise()).unwrap();
        apply_bn_act(&t, bn2)
    }

    fn rand_bnact(rng: &mut SkyRng, c: usize, ceiling: Option<f32>) -> BnAct {
        let mean: Vec<f32> = (0..c).map(|_| rng.range(-0.5, 0.5)).collect();
        let var: Vec<f32> = (0..c).map(|_| rng.range(0.1, 1.1)).collect();
        let gamma: Vec<f32> = (0..c).map(|_| rng.range(0.5, 1.5)).collect();
        let beta: Vec<f32> = (0..c).map(|_| rng.range(-0.5, 0.5)).collect();
        BnAct::new(mean, &var, 1e-5, gamma, beta, ceiling)
    }

    #[test]
    fn fused_bundle_matches_unfused_bitwise() {
        let mut rng = SkyRng::new(7);
        for &(n, c, c2, h, w, ceil) in &[
            (1usize, 3usize, 8usize, 11usize, 13usize, Some(6.0)),
            (2, 4, 6, 8, 8, None),
            (1, 8, 16, 20, 40, Some(6.0)),
            (3, 2, 3, 3, 3, Some(6.0)),
            (1, 1, 1, 1, 1, None),
        ] {
            let x = rand_tensor(&mut rng, Shape::new(n, c, h, w));
            let dw_w = rand_tensor(&mut rng, Shape::new(c, 1, 3, 3));
            let pw_w = rand_tensor(&mut rng, Shape::new(c2, c, 1, 1));
            let bn1 = rand_bnact(&mut rng, c, ceil);
            let bn2 = rand_bnact(&mut rng, c2, ceil);
            let geo = ConvGeometry::same3x3();
            let fused = fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).unwrap();
            let oracle = unfused(&x, &dw_w, geo, &bn1, &pw_w, &bn2);
            assert_eq!(fused.shape(), oracle.shape());
            let fb: Vec<u32> = fused.as_slice().iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u32> = oracle.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, ob, "fused != unfused for n={n} c={c} c2={c2} {h}x{w}");
        }
    }

    #[test]
    fn fused_bundle_stride2_matches_unfused_bitwise() {
        let mut rng = SkyRng::new(9);
        let (n, c, c2, h, w) = (2usize, 5usize, 7usize, 14usize, 18usize);
        let x = rand_tensor(&mut rng, Shape::new(n, c, h, w));
        let dw_w = rand_tensor(&mut rng, Shape::new(c, 1, 3, 3));
        let pw_w = rand_tensor(&mut rng, Shape::new(c2, c, 1, 1));
        let bn1 = rand_bnact(&mut rng, c, Some(6.0));
        let bn2 = rand_bnact(&mut rng, c2, Some(6.0));
        let geo = ConvGeometry {
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let fused = fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).unwrap();
        let oracle = unfused(&x, &dw_w, geo, &bn1, &pw_w, &bn2);
        assert_eq!(
            fused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn qfused_bundle_matches_unfused_stage_pair_bitwise() {
        use crate::qint::{dwconv3_i8, matmul_i8, requant_i8};
        let seq = |len: usize, stride: usize| -> Vec<i8> {
            (0..len)
                .map(|i| ((i * stride + 13) % 255) as u8 as i8)
                .collect()
        };
        for &(n, c, c2, h, w) in &[
            (1usize, 3usize, 8usize, 11usize, 13usize),
            (2, 4, 6, 8, 8),
            (1, 8, 16, 20, 40),
            (3, 2, 3, 3, 3),
            (1, 1, 1, 1, 1),
        ] {
            let plane = h * w;
            let x = seq(n * c * plane, 7);
            let dw_w = seq(c * 9, 11);
            let pw_w = seq(c2 * c, 5);
            let dw_mult: Vec<f32> = (0..c).map(|i| 1e-3 + i as f32 * 1e-4).collect();
            let dw_bias: Vec<f32> = (0..c).map(|i| -0.05 + i as f32 * 0.01).collect();
            let pw_mult: Vec<f32> = (0..c2).map(|i| 2e-3 + i as f32 * 1e-4).collect();
            let pw_bias: Vec<f32> = (0..c2).map(|i| 0.03 - i as f32 * 0.01).collect();
            let clamp = Some((0.0f32, 6.0f32));
            let dw_ep = QEpilogue {
                mult: &dw_mult,
                bias: &dw_bias,
                clamp,
                out_scale: 0.05,
            };
            let pw_ep = QEpilogue {
                mult: &pw_mult,
                bias: &pw_bias,
                clamp,
                out_scale: 0.04,
            };
            // The unfused oracle: full-map DW, requant, PW, requant.
            let mut acc = vec![0i32; n * c * plane];
            dwconv3_i8(&x, &dw_w, &mut acc, n, c, h, w);
            let mut q = vec![0i8; n * c * plane];
            let mut sat_dw = 0u64;
            for pi in 0..n * c {
                let (ch, o) = (pi % c, pi * plane);
                sat_dw += requant_i8(
                    &acc[o..o + plane],
                    dw_mult[ch],
                    dw_bias[ch],
                    clamp,
                    dw_ep.out_scale,
                    &mut q[o..o + plane],
                );
            }
            let mut pacc = vec![0i32; n * c2 * plane];
            for item in 0..n {
                matmul_i8(
                    &pw_w,
                    &q[item * c * plane..(item + 1) * c * plane],
                    &mut pacc[item * c2 * plane..(item + 1) * c2 * plane],
                    c2,
                    c,
                    plane,
                );
            }
            let mut want = vec![0i8; n * c2 * plane];
            let mut sat_pw = 0u64;
            for pi in 0..n * c2 {
                let (oc, o) = (pi % c2, pi * plane);
                sat_pw += requant_i8(
                    &pacc[o..o + plane],
                    pw_mult[oc],
                    pw_bias[oc],
                    clamp,
                    pw_ep.out_scale,
                    &mut want[o..o + plane],
                );
            }
            let mut got = vec![0i8; n * c2 * plane];
            let sats = qfused_bundle_forward(
                &x,
                Shape::new(n, c, h, w),
                &dw_w,
                &dw_ep,
                &pw_w,
                c2,
                &pw_ep,
                &mut got,
            )
            .unwrap();
            assert_eq!(got, want, "n={n} c={c} c2={c2} {h}x{w}");
            assert_eq!((sats.dw, sats.pw), (sat_dw, sat_pw));
        }
    }

    #[test]
    fn qfused_bundle_rejects_short_slices() {
        let shape = Shape::new(1, 2, 4, 4);
        let x = vec![0i8; 2 * 16];
        let dw_w = vec![0i8; 18];
        let pw_w = vec![0i8; 6];
        let ep1 = QEpilogue {
            mult: &[0.1, 0.1],
            bias: &[0.0, 0.0],
            clamp: None,
            out_scale: 0.1,
        };
        let ep2 = QEpilogue {
            mult: &[0.1, 0.1, 0.1],
            bias: &[0.0, 0.0, 0.0],
            clamp: None,
            out_scale: 0.1,
        };
        let mut out = vec![0i8; 3 * 16];
        let mut short_out = vec![0i8; 5];
        assert!(
            qfused_bundle_forward(&x, shape, &dw_w, &ep1, &pw_w, 3, &ep2, &mut short_out).is_err()
        );
        // Epilogue channel mismatch.
        assert!(qfused_bundle_forward(&x, shape, &dw_w, &ep2, &pw_w, 3, &ep2, &mut out).is_err());
        assert!(qfused_bundle_forward(&x, shape, &dw_w, &ep1, &pw_w, 3, &ep2, &mut out).is_ok());
    }

    #[test]
    fn rejects_bad_geometry() {
        let x = Tensor::zeros(Shape::new(1, 2, 4, 4));
        let dw_w = Tensor::zeros(Shape::new(2, 1, 3, 3));
        let pw_w = Tensor::zeros(Shape::new(3, 2, 1, 1));
        let bn1 = BnAct::new(
            vec![0.0; 2],
            &[1.0; 2],
            1e-5,
            vec![1.0; 2],
            vec![0.0; 2],
            None,
        );
        let bn2 = BnAct::new(
            vec![0.0; 3],
            &[1.0; 3],
            1e-5,
            vec![1.0; 3],
            vec![0.0; 3],
            None,
        );
        let geo = ConvGeometry {
            kernel: 5,
            stride: 1,
            pad: 2,
        };
        assert!(fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).is_err());
    }
}
