//! Thread-local scratch arena: reusable `f32` buffers for kernel hot loops.
//!
//! The convolution kernels lower feature maps into temporary column /
//! packing / partial-sum buffers whose sizes repeat exactly from call to
//! call (a network's shapes are fixed). Allocating those with `vec!` on
//! every call puts the allocator on the hot path — and, as Kwon et al.
//! observe for this class of workload, memory traffic rather than FLOPs
//! is what dominates. This module keeps the buffers alive instead:
//!
//! * every thread owns one arena (a plain `thread_local!`, so each
//!   [`parallel`](crate::parallel) pool worker gets its own — checkouts
//!   never contend);
//! * buffers are **size-classed** to the next power of two, so a checkout
//!   of any recurring size is a pop from a per-class free list;
//! * a checked-out buffer is returned to its arena when the
//!   [`ScratchBuf`] guard drops, ready for the next call.
//!
//! In steady state a training iteration therefore performs **zero heap
//! allocations from these call sites** — the `profile` bench bin asserts
//! exactly that via the miss counters below.
//!
//! ## Telemetry
//!
//! When metrics are enabled, every checkout tallies per-op counters:
//! `scratch.<op>.bytes_alloc` (bytes newly allocated because the arena
//! missed) and `scratch.<op>.arena_reuse` (checkouts served from the free
//! list), plus the global `scratch.miss_bytes`. Misses depend on which
//! thread ran which task, so the `scratch.*` family is — like `pool.*` —
//! outside the telemetry determinism guarantee.
//!
//! ## Contents contract
//!
//! [`checkout`] returns a buffer with **unspecified contents** (stale
//! data from a previous use); callers must fully overwrite it before
//! reading, which is what `im2col`-style producers do. Accumulating
//! consumers use [`checkout_zeroed`].
//!
//! ## Alignment
//!
//! Every checked-out buffer starts on a **32-byte boundary**: the
//! backing storage is a `Vec` of 32-byte-aligned 8-float `Lane`
//! groups, matching the [`simd`](crate::simd) vector width (one AVX2
//! register, two SSE2 registers). The vector kernels use unaligned
//! loads — tensors themselves carry no alignment guarantee — but
//! scratch-resident tiles (e.g. the matmul B-pack) land on aligned
//! addresses, which keeps those loads from splitting cache lines.

use crate::simd::LANES;
use crate::telemetry;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Smallest size class, in `f32` elements. Requests below this round up.
/// Always a multiple of [`LANES`], so class storage divides evenly into
/// [`Lane`] groups.
const MIN_CLASS: usize = 256;

/// One 32-byte-aligned group of eight `f32` lanes — the allocation unit
/// that gives every scratch buffer its alignment guarantee. `repr(C)`
/// with `size_of == align_of == 32`: a `Vec<Lane>` is therefore a gapless
/// `f32` array starting on a 32-byte boundary.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(32))]
struct Lane([f32; LANES]);

const _: () = assert!(std::mem::size_of::<Lane>() == 32 && std::mem::align_of::<Lane>() == 32);
const _: () = assert!(MIN_CLASS.is_multiple_of(LANES));

/// Free buffers kept per size class; beyond this, returned buffers are
/// dropped. Bounds arena growth when a workload churns through many
/// concurrent same-class checkouts once and never again.
const MAX_PER_CLASS: usize = 8;

struct Arena {
    /// `classes[i]` holds free buffers of `MIN_CLASS << i` elements
    /// (`(MIN_CLASS << i) / LANES` lane groups).
    classes: Vec<Vec<Vec<Lane>>>,
}

impl Arena {
    const fn new() -> Self {
        Arena {
            classes: Vec::new(),
        }
    }

    fn class_index(len: usize) -> usize {
        let class = len.next_power_of_two().max(MIN_CLASS);
        (class / MIN_CLASS).trailing_zeros() as usize
    }

    fn take(&mut self, len: usize) -> Option<Vec<Lane>> {
        let idx = Self::class_index(len);
        self.classes.get_mut(idx)?.pop()
    }

    fn put(&mut self, buf: Vec<Lane>) {
        let floats = buf.len() * LANES;
        debug_assert!(floats.is_power_of_two() && floats >= MIN_CLASS);
        let idx = Self::class_index(floats);
        if idx >= self.classes.len() {
            self.classes.resize_with(idx + 1, Vec::new);
        }
        let list = &mut self.classes[idx];
        if list.len() < MAX_PER_CLASS {
            list.push(buf);
        }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = const { RefCell::new(Arena::new()) };
}

/// A scratch buffer checked out of this thread's arena. Dereferences to
/// `[f32]` of exactly the requested length, starting on a 32-byte
/// boundary; the guard returns the backing storage to the arena of
/// whichever thread drops it.
#[derive(Debug)]
pub struct ScratchBuf {
    /// Backing storage, always a full size class long (in lane groups).
    data: Vec<Lane>,
    /// Requested length in `f32` elements (`<= data.len() * LANES`).
    len: usize,
}

impl Deref for ScratchBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        // SAFETY: `Lane` is `repr(C)` with size 32 and no padding, so
        // `data`'s storage is `data.len() * LANES` contiguous, initialized
        // f32s; `len` never exceeds that (checkout invariant).
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<f32>(), self.len) }
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: as in `deref`, plus exclusive access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.data.as_mut_ptr().cast::<f32>(), self.len) }
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.data);
        if !buf.is_empty() {
            // During thread teardown the arena TLS may already be gone;
            // the buffer is then simply freed.
            let _ = ARENA.try_with(|a| a.borrow_mut().put(buf));
        }
    }
}

fn record_checkout(op: &'static str, hit: bool, class_bytes: usize) {
    if !telemetry::metrics_enabled() {
        return;
    }
    if hit {
        telemetry::counter(&format!("scratch.{op}.arena_reuse")).inc();
    } else {
        telemetry::counter(&format!("scratch.{op}.bytes_alloc")).add(class_bytes as u64);
        telemetry::counter("scratch.miss_bytes").add(class_bytes as u64);
    }
}

/// Pops (or allocates) backing storage covering `units` f32-equivalent
/// elements — the shared body of every typed checkout. The arena pools
/// raw lane groups, so f32, i32, and i8 checkouts of the same class all
/// draw from one free list.
fn checkout_lanes(op: &'static str, units: usize) -> Vec<Lane> {
    let reused = ARENA
        .try_with(|a| a.borrow_mut().take(units))
        .ok()
        .flatten();
    let hit = reused.is_some();
    let data = reused.unwrap_or_else(|| {
        let class = units.next_power_of_two().max(MIN_CLASS);
        vec![Lane([0.0; LANES]); class / LANES]
    });
    record_checkout(op, hit, data.len() * std::mem::size_of::<Lane>());
    data
}

/// Checks out a buffer of `len` floats with **unspecified contents** (see
/// the module docs). `op` names the call site for the per-op allocation
/// counters — by convention the kernel's span name, e.g.
/// `"tensor.conv_fwd"`.
pub fn checkout(op: &'static str, len: usize) -> ScratchBuf {
    if len == 0 {
        return ScratchBuf {
            data: Vec::new(),
            len: 0,
        };
    }
    ScratchBuf {
        data: checkout_lanes(op, len),
        len,
    }
}

/// [`checkout`] with the first `len` elements zeroed — for buffers the
/// caller accumulates into rather than overwrites.
pub fn checkout_zeroed(op: &'static str, len: usize) -> ScratchBuf {
    let mut buf = checkout(op, len);
    buf.fill(0.0);
    buf
}

/// Declares an integer-typed scratch guard plus its checkout. The
/// backing storage is the same `Lane` pool the f32 buffers use — `Lane`
/// is plain initialized bytes, every bit pattern is a valid `i32`/`i8`,
/// and the 32-byte alignment exceeds any integer's — so the INT8 fused
/// path shares free lists (and the zero-hot-loop-allocation guarantee)
/// with the f32 kernels.
macro_rules! typed_scratch {
    (
        $(#[$doc:meta])* $guard:ident, $elem:ty, $per_unit:expr,
        $(#[$cdoc:meta])* $checkout:ident
    ) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $guard {
            /// Backing storage, always a full size class long.
            data: Vec<Lane>,
            /// Requested length in elements.
            len: usize,
        }

        impl Deref for $guard {
            type Target = [$elem];

            fn deref(&self) -> &[$elem] {
                // SAFETY: `Lane` is `repr(C)` f32s with no padding —
                // initialized bytes that are valid at any integer type;
                // `len` elements never exceed the storage (checkout
                // invariant) and the 32-byte alignment is sufficient.
                unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<$elem>(), self.len) }
            }
        }

        impl DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut [$elem] {
                // SAFETY: as in `deref`, plus exclusivity through `&mut self`.
                unsafe {
                    std::slice::from_raw_parts_mut(self.data.as_mut_ptr().cast::<$elem>(), self.len)
                }
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                let buf = std::mem::take(&mut self.data);
                if !buf.is_empty() {
                    // Integer writes through the guard may leave storage
                    // bit patterns that are signalling-NaN f32s; that is
                    // fine — f32 checkouts have unspecified contents and
                    // never read them.
                    let _ = ARENA.try_with(|a| a.borrow_mut().put(buf));
                }
            }
        }

        $(#[$cdoc])*
        pub fn $checkout(op: &'static str, len: usize) -> $guard {
            if len == 0 {
                return $guard {
                    data: Vec::new(),
                    len: 0,
                };
            }
            $guard {
                data: checkout_lanes(op, len.div_ceil($per_unit)),
                len,
            }
        }
    };
}

typed_scratch!(
    /// An `i32` scratch buffer (raw integer accumulators) checked out of
    /// this thread's arena; see [`ScratchBuf`] for the guard contract.
    ScratchBufI32,
    i32,
    1,
    /// Checks out `len` `i32`s with **unspecified contents**.
    checkout_i32
);

typed_scratch!(
    /// An `i8` scratch buffer (quantized activations) checked out of
    /// this thread's arena; see [`ScratchBuf`] for the guard contract.
    ScratchBufI8,
    i8,
    4,
    /// Checks out `len` `i8`s with **unspecified contents**.
    checkout_i8
);

/// Drops every free buffer held by the **current thread's** arena. Used
/// by tests that want a cold-arena baseline; pool worker arenas are
/// unaffected.
pub fn clear_thread_arena() {
    let _ = ARENA.try_with(|a| a.borrow_mut().classes.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_has_requested_length() {
        let buf = checkout("test.scratch", 1000);
        assert_eq!(buf.len(), 1000);
        assert_eq!(checkout("test.scratch", 0).len(), 0);
    }

    #[test]
    fn buffers_are_reused_within_a_thread() {
        clear_thread_arena();
        let first = checkout("test.scratch", 500);
        let ptr = first.as_ptr();
        drop(first);
        let second = checkout("test.scratch", 500);
        assert_eq!(second.as_ptr(), ptr, "same size class must reuse");
        // A different class gets different storage.
        let third = checkout("test.scratch", 50_000);
        assert_ne!(third.as_ptr(), ptr);
    }

    #[test]
    fn zeroed_checkout_clears_stale_contents() {
        clear_thread_arena();
        {
            let mut buf = checkout("test.scratch", 300);
            buf.fill(7.0);
        }
        let buf = checkout_zeroed("test.scratch", 300);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn class_index_rounds_to_power_of_two() {
        assert_eq!(Arena::class_index(1), 0);
        assert_eq!(Arena::class_index(MIN_CLASS), 0);
        assert_eq!(Arena::class_index(MIN_CLASS + 1), 1);
        assert_eq!(Arena::class_index(4 * MIN_CLASS), 2);
    }

    #[test]
    fn checkouts_are_32_byte_aligned_across_all_size_classes() {
        clear_thread_arena();
        // Below MIN_CLASS, exactly MIN_CLASS, non-power-of-two, several
        // classes up, and a large class — fresh and reused.
        for len in [1usize, 8, 255, 256, 300, 4096, 5000, 50_000] {
            for round in 0..2 {
                let buf = checkout("test.scratch", len);
                assert_eq!(
                    buf.as_ptr() as usize % 32,
                    0,
                    "len={len} round={round} not 32-byte aligned"
                );
                assert_eq!(buf.len(), len);
            }
        }
    }

    #[test]
    fn typed_checkouts_share_the_lane_pool() {
        clear_thread_arena();
        let f = checkout("test.scratch", 512);
        let ptr = f.as_ptr() as usize;
        drop(f);
        let ib = checkout_i32("test.scratch", 512);
        assert_eq!(ib.as_ptr() as usize, ptr, "i32 must reuse the f32 class");
        assert_eq!(ib.len(), 512);
        drop(ib);
        // 2048 i8s occupy the same 512-f32-unit class.
        let qb = checkout_i8("test.scratch", 2048);
        assert_eq!(qb.as_ptr() as usize, ptr, "i8 must reuse the same class");
        assert_eq!(qb.len(), 2048);
        assert_eq!(qb.as_ptr() as usize % 32, 0);
        assert_eq!(checkout_i8("test.scratch", 0).len(), 0);
        assert_eq!(checkout_i32("test.scratch", 0).len(), 0);
    }

    #[test]
    fn typed_checkouts_are_writable_at_full_length() {
        let mut ib = checkout_i32("test.scratch", 300);
        ib.fill(i32::MIN);
        assert!(ib.iter().all(|&v| v == i32::MIN));
        let mut qb = checkout_i8("test.scratch", 1001); // non-multiple of 4
        qb.fill(-128);
        assert!(qb.iter().all(|&v| v == -128));
    }

    #[test]
    fn per_class_cap_bounds_growth() {
        clear_thread_arena();
        let bufs: Vec<_> = (0..2 * MAX_PER_CLASS)
            .map(|_| checkout("test.scratch", MIN_CLASS))
            .collect();
        drop(bufs);
        let held = ARENA.with(|a| a.borrow().classes[0].len());
        assert_eq!(held, MAX_PER_CLASS);
    }
}
