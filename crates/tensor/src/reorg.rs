//! Feature-map reordering (space-to-depth), Fig. 5 of the paper.
//!
//! The bypass in SkyNet models B and C crosses a pooling layer, so the
//! low-level feature map must shrink its spatial extent to match — but
//! pooling would lose information. Reordering instead moves each `s×s`
//! spatial block into `s²` channels: `C×H×W → (C·s²)×(H/s)×(W/s)` with no
//! information loss and a larger receptive field per output pixel.
//!
//! The operation is a pure permutation, so its backward pass is the inverse
//! permutation and round-trips exactly.

use crate::{Result, Shape, Tensor, TensorError};

/// Output shape of a reorg with block size `s` applied to `input`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] when `s == 0` or the spatial
/// extents are not divisible by `s`.
pub fn reorg_out_shape(input: Shape, s: usize) -> Result<Shape> {
    if s == 0 {
        return Err(TensorError::InvalidDimension {
            op: "reorg",
            detail: "block size must be positive".into(),
        });
    }
    if !input.h.is_multiple_of(s) || !input.w.is_multiple_of(s) {
        return Err(TensorError::InvalidDimension {
            op: "reorg",
            detail: format!(
                "spatial extents {}×{} not divisible by {s}",
                input.h, input.w
            ),
        });
    }
    Ok(Shape::new(
        input.n,
        input.c * s * s,
        input.h / s,
        input.w / s,
    ))
}

/// Space-to-depth reordering with block size `s`.
///
/// Output channel layout: for input channel `c` and intra-block offset
/// `(dy, dx)`, the data lands in output channel `c * s² + dy * s + dx`.
/// With `s = 2` this maps `1×4×4 → 4×2×2` exactly as in Fig. 5.
///
/// # Errors
///
/// Propagates the shape errors of [`reorg_out_shape`].
pub fn reorg(input: &Tensor, s: usize) -> Result<Tensor> {
    let is = input.shape();
    let os = reorg_out_shape(is, s)?;
    let mut out = Tensor::zeros(os);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for n in 0..is.n {
        for c in 0..is.c {
            let in_base = (n * is.c + c) * is.plane();
            for dy in 0..s {
                for dx in 0..s {
                    let oc = c * s * s + dy * s + dx;
                    let out_base = (n * os.c + oc) * os.plane();
                    for oy in 0..os.h {
                        let in_row = in_base + (oy * s + dy) * is.w + dx;
                        let out_row = out_base + oy * os.w;
                        for ox in 0..os.w {
                            dst[out_row + ox] = src[in_row + ox * s];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`reorg`]: the inverse permutation, mapping an output
/// gradient back onto the input layout.
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_out`'s shape is not the reorg of
/// `input_shape`.
pub fn reorg_backward(input_shape: Shape, grad_out: &Tensor, s: usize) -> Result<Tensor> {
    let os = reorg_out_shape(input_shape, s)?;
    if grad_out.shape() != os {
        return Err(TensorError::ShapeMismatch {
            op: "reorg_backward",
            expected: os.to_string(),
            got: grad_out.shape().to_string(),
        });
    }
    let mut gi = Tensor::zeros(input_shape);
    let src = grad_out.as_slice();
    let dst = gi.as_mut_slice();
    let is = input_shape;
    for n in 0..is.n {
        for c in 0..is.c {
            let in_base = (n * is.c + c) * is.plane();
            for dy in 0..s {
                for dx in 0..s {
                    let oc = c * s * s + dy * s + dx;
                    let out_base = (n * os.c + oc) * os.plane();
                    for oy in 0..os.h {
                        let in_row = in_base + (oy * s + dy) * is.w + dx;
                        let out_row = out_base + oy * os.w;
                        for ox in 0..os.w {
                            dst[in_row + ox * s] = src[out_row + ox];
                        }
                    }
                }
            }
        }
    }
    Ok(gi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 5 example: 1×4×4 → 4×2×2.
    #[test]
    fn fig5_example() {
        #[rustfmt::skip]
        let x = Tensor::from_vec(Shape::new(1, 1, 4, 4), vec![
             0.0,  1.0,  2.0,  3.0,
             4.0,  5.0,  6.0,  7.0,
             8.0,  9.0, 10.0, 11.0,
            12.0, 13.0, 14.0, 15.0,
        ]).unwrap();
        let y = reorg(&x, 2).unwrap();
        assert_eq!(y.shape(), Shape::new(1, 4, 2, 2));
        // Channel 0 = offsets (0,0): the even-row/even-col samples.
        assert_eq!(&y.as_slice()[0..4], &[0.0, 2.0, 8.0, 10.0]);
        // Channel 1 = offsets (0,1).
        assert_eq!(&y.as_slice()[4..8], &[1.0, 3.0, 9.0, 11.0]);
        // Channel 2 = offsets (1,0).
        assert_eq!(&y.as_slice()[8..12], &[4.0, 6.0, 12.0, 14.0]);
        // Channel 3 = offsets (1,1).
        assert_eq!(&y.as_slice()[12..16], &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn no_information_loss() {
        let s = Shape::new(2, 3, 6, 8);
        let x = Tensor::from_vec(s, (0..s.numel()).map(|i| i as f32).collect()).unwrap();
        let y = reorg(&x, 2).unwrap();
        // Same multiset of values (a permutation).
        let mut a: Vec<f32> = x.as_slice().to_vec();
        let mut b: Vec<f32> = y.as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn backward_is_inverse() {
        let s = Shape::new(1, 2, 4, 4);
        let x = Tensor::from_vec(s, (0..s.numel()).map(|i| (i as f32).sin()).collect()).unwrap();
        let y = reorg(&x, 2).unwrap();
        let back = reorg_backward(s, &y, 2).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_indivisible() {
        let x = Tensor::zeros(Shape::new(1, 1, 5, 4));
        assert!(reorg(&x, 2).is_err());
        assert!(reorg(&x, 0).is_err());
    }
}
