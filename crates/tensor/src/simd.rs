//! Fixed-width SIMD lane abstraction with a **lane-ordered determinism
//! contract**.
//!
//! The hot kernels in this crate ([`dwconv`](crate::dwconv),
//! [`matmul`](crate::matmul), the elementwise tails in
//! [`ops`](crate::ops)/[`conv`](crate::conv)) are written **once** as
//! generic functions over the [`F32x8`] trait and instantiated for three
//! backends:
//!
//! * [`ScalarV`] — plain Rust on a `[f32; 8]`, available everywhere;
//! * [`Sse2V`] — two `__m128` halves (SSE2 is the x86_64 baseline);
//! * [`Avx2V`] — one `__m256`, used when the CPU reports AVX2.
//!
//! Every trait method performs the **same eight IEEE-754 single-precision
//! operations in the same order** on every backend: no FMA (fused
//! multiply-add rounds once where `mul` + `add` round twice, and SSE2
//! cannot fuse, so fusing would split the backends), a fixed
//! [`F32x8::reduce_add`] tree, and x86 `min`/`max`/compare semantics
//! replayed literally by the scalar fallback. A kernel written against
//! the trait is therefore **bit-identical across backends by
//! construction** — the cross-thread-count determinism guarantee of
//! [`parallel`](crate::parallel) extends to a cross-ISA guarantee. The
//! `simd_equivalence` proptest suite asserts it bitwise.
//!
//! ## Backend selection
//!
//! The active backend is a process-wide setting resolved once from the
//! `SKYNET_SIMD` environment variable (`scalar`, `sse2`, `avx2`,
//! `avx2pair`, or `auto` — the default — which picks the widest
//! available). Forcing a backend the CPU cannot run is a **hard error**
//! (panic), never a silent fallback. [`force`] flips the backend at
//! runtime — safe precisely because all backends produce identical
//! bits, so tests and benches can sweep backends in-process.
//!
//! [`Backend::Avx2Pair`] is the integer pairing tier: its f32 kernels
//! are exactly the AVX2 ones, but the INT8 kernels in
//! [`qint`](crate::qint) accumulate adjacent `i8×i8` products through
//! `madd`-style pair reduction (still bit-identical — see the module
//! docs there). It is preferred by `auto` wherever AVX2 is available.
//!
//! ## Telemetry
//!
//! When metrics are on, the `simd.backend` gauge reports the resolved
//! backend (0 = scalar, 1 = sse2, 2 = avx2, 3 = avx2pair) and `simd.<op>.lanes_used`
//! counters tally elements processed through the 8-lane kernels (the
//! scalar backend replays the same lane structure, so its elements count
//! too; for `matmul` the count is nominal — the `a == 0` skip is not
//! deducted).

use crate::telemetry;
use std::sync::atomic::{AtomicU8, Ordering};

/// Lane count of the [`F32x8`] abstraction. Fixed at 8 on every backend
/// so the accumulation order — and therefore every result bit — never
/// depends on the ISA.
pub const LANES: usize = 8;

/// A SIMD backend the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Plain Rust replaying the 8-lane operation order.
    Scalar,
    /// SSE2 (`__m128` pairs) — the x86_64 baseline, always available there.
    Sse2,
    /// AVX2 (`__m256`) — requires runtime CPU support.
    Avx2,
    /// AVX2 with pairwise-`madd` INT8 accumulation. The f32 kernels are
    /// identical to [`Backend::Avx2`]; only the integer kernels differ
    /// (and only in throughput — never in output bits).
    Avx2Pair,
}

impl Backend {
    /// Lower-case name, matching the `SKYNET_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Avx2Pair => "avx2pair",
        }
    }

    /// Whether this process can execute the backend.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 | Backend::Avx2Pair => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Gauge code reported as `simd.backend`.
    fn code(self) -> u8 {
        match self {
            Backend::Scalar => 0,
            Backend::Sse2 => 1,
            Backend::Avx2 => 2,
            Backend::Avx2Pair => 3,
        }
    }
}

/// Every `SKYNET_SIMD` value [`init_from_env`] accepts, in the order the
/// hard error lists them. Pinned by a unit test so the message cannot
/// silently drift from the parser.
const ACCEPTED_SIMD_VALUES: &str = "scalar|sse2|avx2|avx2pair|auto";

/// The unknown-`SKYNET_SIMD` hard-error text. Kept in a helper so the
/// panic and the test pinning its wording share one definition.
fn unknown_simd_value_message(other: &str) -> String {
    format!("SKYNET_SIMD={other:?} is not a backend (expected {ACCEPTED_SIMD_VALUES})")
}

/// Every backend this process can execute, widest last. The first entry
/// is always [`Backend::Scalar`], so sweeps have a fixed oracle.
pub fn available_backends() -> Vec<Backend> {
    [
        Backend::Scalar,
        Backend::Sse2,
        Backend::Avx2,
        Backend::Avx2Pair,
    ]
    .into_iter()
    .filter(|b| b.is_available())
    .collect()
}

/// `ACTIVE` encoding: 0 = unresolved, otherwise `Backend::code() + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn widest_available() -> Backend {
    if Backend::Avx2Pair.is_available() {
        Backend::Avx2Pair
    } else if Backend::Sse2.is_available() {
        Backend::Sse2
    } else {
        Backend::Scalar
    }
}

fn store_active(be: Backend) {
    ACTIVE.store(be.code() + 1, Ordering::Relaxed);
    telemetry::record_gauge("simd.backend", f64::from(be.code()));
}

/// The active backend, resolving `SKYNET_SIMD` on first use.
///
/// # Panics
///
/// Panics (hard error, by design) when `SKYNET_SIMD` names an unknown
/// value or a backend this CPU cannot execute.
pub fn active() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => Backend::Scalar,
        2 => Backend::Sse2,
        3 => Backend::Avx2,
        _ => Backend::Avx2Pair,
    }
}

#[cold]
fn init_from_env() -> Backend {
    let be = match std::env::var("SKYNET_SIMD").as_deref() {
        Err(_) | Ok("auto") | Ok("") => widest_available(),
        Ok("scalar") => Backend::Scalar,
        Ok("sse2") => Backend::Sse2,
        Ok("avx2") => Backend::Avx2,
        Ok("avx2pair") => Backend::Avx2Pair,
        Ok(other) => panic!("{}", unknown_simd_value_message(other)),
    };
    assert!(
        be.is_available(),
        "SKYNET_SIMD={} forced, but this CPU cannot execute it",
        be.name()
    );
    store_active(be);
    be
}

/// Forces the active backend, e.g. for a bench sweep. Safe to flip
/// mid-process: every backend produces bit-identical results, so in-flight
/// kernels cannot observe the change in their outputs.
///
/// # Panics
///
/// Panics when the backend is unavailable on this CPU (same hard-error
/// contract as `SKYNET_SIMD`).
pub fn force(be: Backend) {
    assert!(
        be.is_available(),
        "cannot force SIMD backend {}: unavailable on this CPU",
        be.name()
    );
    store_active(be);
}

/// Tallies `simd.<op>.lanes_used` when metrics are enabled, and
/// refreshes the `simd.backend` gauge (so it survives
/// [`telemetry::reset_metrics`] between measurement windows).
#[inline]
pub fn record_lanes(op: &'static str, lanes: usize) {
    if lanes > 0 && telemetry::metrics_enabled() {
        telemetry::counter(&format!("simd.{op}.lanes_used")).add(lanes as u64);
        telemetry::record_gauge("simd.backend", f64::from(active().code()));
    }
}

/// Number of elements of a `len`-element loop body that the 8-lane
/// kernels process as full blocks (the remainder runs scalar).
#[inline]
pub fn vector_cover(len: usize) -> usize {
    len / LANES * LANES
}

// ---------------------------------------------------------------------------
// The lane abstraction
// ---------------------------------------------------------------------------

/// Eight `f32` lanes with backend-independent IEEE-754 semantics.
///
/// Implementations must make every method perform per-lane-identical
/// single-precision operations across backends:
///
/// * `add`/`sub`/`mul` round once per lane (never fused);
/// * [`F32x8::min`]/[`F32x8::max`] use the x86 `minps`/`maxps` rule —
///   `min(a, b) = if a < b { a } else { b }` (so `b` wins on NaN and on
///   equal-magnitude signed zeros), and symmetrically for `max`;
/// * [`F32x8::less_than`] is the ordered compare (`false` on NaN),
///   yielding an all-ones/all-zeros lane mask;
/// * [`F32x8::reduce_add`] sums lanes in the fixed tree
///   `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))`.
pub trait F32x8: Copy {
    /// All lanes set to `v`.
    fn splat(v: f32) -> Self;
    /// Loads lanes from `src[0..8]`.
    ///
    /// # Panics
    ///
    /// Panics when `src` holds fewer than 8 elements.
    fn load(src: &[f32]) -> Self;
    /// Loads every second element: lane `j` is `src[2 * j]`. Requires 15
    /// elements (not 16): lane 7 reads `src[14]`, and the implementations
    /// never touch `src[15]`, so callers can pass exactly the tight
    /// interior span of a stride-2 kernel.
    ///
    /// # Panics
    ///
    /// Panics when `src` holds fewer than 15 elements.
    fn load_stride2(src: &[f32]) -> Self;
    /// Stores lanes to `dst[0..8]`.
    ///
    /// # Panics
    ///
    /// Panics when `dst` holds fewer than 8 elements.
    fn store(self, dst: &mut [f32]);
    /// Unchecked [`F32x8::load`] for hot loops whose bounds are proved
    /// once up front: LLVM does not eliminate the per-call slice checks
    /// of the safe variant through the backend dispatch, and a 3×3
    /// stencil makes 9 such calls per 8-pixel block.
    ///
    /// # Safety
    ///
    /// `src` must be valid for reads of 8 consecutive `f32`s.
    unsafe fn load_ptr(src: *const f32) -> Self;
    /// Unchecked [`F32x8::load_stride2`]: lane `j` reads `src[2 * j]`.
    ///
    /// # Safety
    ///
    /// `src` must be valid for reads of 15 consecutive `f32`s (lane 7
    /// reads `src[14]`; `src[15]` is never touched).
    unsafe fn load_stride2_ptr(src: *const f32) -> Self;
    /// Unchecked [`F32x8::store`].
    ///
    /// # Safety
    ///
    /// `dst` must be valid for writes of 8 consecutive `f32`s.
    unsafe fn store_ptr(self, dst: *mut f32);
    /// Lane-wise `self + o`.
    fn add(self, o: Self) -> Self;
    /// Lane-wise `self - o`.
    fn sub(self, o: Self) -> Self;
    /// Lane-wise `self * o`.
    fn mul(self, o: Self) -> Self;
    /// Lane-wise `minps` rule: `if self < o { self } else { o }`.
    fn min(self, o: Self) -> Self;
    /// Lane-wise `maxps` rule: `if self > o { self } else { o }`.
    fn max(self, o: Self) -> Self;
    /// Lane-wise absolute value (clears the sign bit).
    fn abs(self) -> Self;
    /// Ordered lane-wise `self < o`, as an all-ones/all-zeros bit mask.
    fn less_than(self, o: Self) -> Self;
    /// Lane-wise bit blend: where `mask` lanes are all-ones take
    /// `if_true`, else `if_false`. `mask` must come from a compare.
    fn select(mask: Self, if_true: Self, if_false: Self) -> Self;
    /// Sums the lanes in the fixed tree
    /// `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))` — the order the SSE
    /// `movehl`/`shuffle` reduction produces, replayed by every backend.
    fn reduce_add(self) -> f32;
    /// Lanes as an array (for scalar scatter of vector products).
    fn to_array(self) -> [f32; 8];
}

// ---------------------------------------------------------------------------
// Scalar backend: the lane-ordered oracle
// ---------------------------------------------------------------------------

/// The scalar backend: a `[f32; 8]` replaying the vector operation order
/// literally. This is the oracle the `simd_equivalence` suite compares
/// the ISA backends against.
#[derive(Debug, Clone, Copy)]
pub struct ScalarV([f32; LANES]);

impl F32x8 for ScalarV {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        ScalarV([v; LANES])
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        let s: &[f32; LANES] = src[..LANES].try_into().expect("8 lanes");
        ScalarV(*s)
    }

    #[inline(always)]
    fn load_stride2(src: &[f32]) -> Self {
        assert!(src.len() >= 15, "load_stride2 needs 15 elements");
        ScalarV(std::array::from_fn(|j| src[2 * j]))
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    #[inline(always)]
    unsafe fn load_ptr(src: *const f32) -> Self {
        // SAFETY: caller guarantees 8 readable elements.
        ScalarV(std::array::from_fn(|j| unsafe { *src.add(j) }))
    }

    #[inline(always)]
    unsafe fn load_stride2_ptr(src: *const f32) -> Self {
        // SAFETY: caller guarantees 15 readable elements.
        ScalarV(std::array::from_fn(|j| unsafe { *src.add(2 * j) }))
    }

    #[inline(always)]
    unsafe fn store_ptr(self, dst: *mut f32) {
        // SAFETY: caller guarantees 8 writable elements.
        unsafe { std::ptr::copy_nonoverlapping(self.0.as_ptr(), dst, LANES) }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        ScalarV(std::array::from_fn(|j| self.0[j] + o.0[j]))
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        ScalarV(std::array::from_fn(|j| self.0[j] - o.0[j]))
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        ScalarV(std::array::from_fn(|j| self.0[j] * o.0[j]))
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        // minps: second operand wins on NaN and ±0 ties.
        ScalarV(std::array::from_fn(|j| {
            if self.0[j] < o.0[j] {
                self.0[j]
            } else {
                o.0[j]
            }
        }))
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        ScalarV(std::array::from_fn(|j| {
            if self.0[j] > o.0[j] {
                self.0[j]
            } else {
                o.0[j]
            }
        }))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        ScalarV(std::array::from_fn(|j| {
            f32::from_bits(self.0[j].to_bits() & 0x7fff_ffff)
        }))
    }

    #[inline(always)]
    fn less_than(self, o: Self) -> Self {
        ScalarV(std::array::from_fn(|j| {
            f32::from_bits(if self.0[j] < o.0[j] { u32::MAX } else { 0 })
        }))
    }

    #[inline(always)]
    fn select(mask: Self, if_true: Self, if_false: Self) -> Self {
        ScalarV(std::array::from_fn(|j| {
            let m = mask.0[j].to_bits();
            f32::from_bits((m & if_true.0[j].to_bits()) | (!m & if_false.0[j].to_bits()))
        }))
    }

    #[inline(always)]
    fn reduce_add(self) -> f32 {
        let l = self.0;
        ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 8] {
        self.0
    }
}

// ---------------------------------------------------------------------------
// SSE2 backend (x86_64 baseline)
// ---------------------------------------------------------------------------

/// SSE2 backend: two `__m128` halves (lanes 0–3 and 4–7). SSE2 is part
/// of the x86_64 baseline, so this backend needs no runtime detection.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Sse2V(std::arch::x86_64::__m128, std::arch::x86_64::__m128);

#[cfg(target_arch = "x86_64")]
impl F32x8 for Sse2V {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_set1_ps(v), _mm_set1_ps(v)) }
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        assert!(src.len() >= LANES, "load needs 8 elements");
        // SAFETY: length checked above.
        unsafe { Self::load_ptr(src.as_ptr()) }
    }

    #[inline(always)]
    fn load_stride2(src: &[f32]) -> Self {
        assert!(src.len() >= 15, "load_stride2 needs 15 elements");
        // SAFETY: length checked above.
        unsafe { Self::load_stride2_ptr(src.as_ptr()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        assert!(dst.len() >= LANES, "store needs 8 elements");
        // SAFETY: length checked above.
        unsafe { self.store_ptr(dst.as_mut_ptr()) }
    }

    #[inline(always)]
    unsafe fn load_ptr(src: *const f32) -> Self {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees 8 readable elements.
        unsafe { Sse2V(_mm_loadu_ps(src), _mm_loadu_ps(src.add(4))) }
    }

    #[inline(always)]
    unsafe fn load_stride2_ptr(src: *const f32) -> Self {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees 15 readable elements.
        unsafe {
            // Lanes 0–3 = src[0,2,4,6]: deinterleave two 4-wide loads.
            let a = _mm_loadu_ps(src); //  s0 s1 s2 s3
            let b = _mm_loadu_ps(src.add(4)); //  s4 s5 s6 s7
            let lo = _mm_shuffle_ps::<0b10_00_10_00>(a, b); // s0 s2 s4 s6
                                                            // Lanes 4–7 = src[8,10,12,14]: the second load starts at 11
                                                            // so the last element read is src[14], never src[15].
            let c = _mm_loadu_ps(src.add(8)); //  s8 s9 s10 s11
            let d = _mm_loadu_ps(src.add(11)); // s11 s12 s13 s14
            let hi = _mm_shuffle_ps::<0b11_01_10_00>(c, d); // s8 s10 s12 s14
            Sse2V(lo, hi)
        }
    }

    #[inline(always)]
    unsafe fn store_ptr(self, dst: *mut f32) {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees 8 writable elements.
        unsafe {
            _mm_storeu_ps(dst, self.0);
            _mm_storeu_ps(dst.add(4), self.1);
        }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_add_ps(self.0, o.0), _mm_add_ps(self.1, o.1)) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_sub_ps(self.0, o.0), _mm_sub_ps(self.1, o.1)) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_mul_ps(self.0, o.0), _mm_mul_ps(self.1, o.1)) }
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_min_ps(self.0, o.0), _mm_min_ps(self.1, o.1)) }
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_max_ps(self.0, o.0), _mm_max_ps(self.1, o.1)) }
    }

    #[inline(always)]
    fn abs(self) -> Self {
        use std::arch::x86_64::*;
        unsafe {
            let m = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
            Sse2V(_mm_and_ps(self.0, m), _mm_and_ps(self.1, m))
        }
    }

    #[inline(always)]
    fn less_than(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2V(_mm_cmplt_ps(self.0, o.0), _mm_cmplt_ps(self.1, o.1)) }
    }

    #[inline(always)]
    fn select(mask: Self, if_true: Self, if_false: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe {
            Sse2V(
                _mm_or_ps(
                    _mm_and_ps(mask.0, if_true.0),
                    _mm_andnot_ps(mask.0, if_false.0),
                ),
                _mm_or_ps(
                    _mm_and_ps(mask.1, if_true.1),
                    _mm_andnot_ps(mask.1, if_false.1),
                ),
            )
        }
    }

    #[inline(always)]
    fn reduce_add(self) -> f32 {
        use std::arch::x86_64::*;
        unsafe {
            // s = [l0+l4, l1+l5, l2+l6, l3+l7]
            let s = _mm_add_ps(self.0, self.1);
            // t = [s0+s2, s1+s3, ..] — then r = t0 + t1.
            let t = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let r = _mm_add_ss(t, _mm_shuffle_ps::<0b01>(t, t));
            _mm_cvtss_f32(r)
        }
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        self.store(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend
// ---------------------------------------------------------------------------

/// AVX2 backend: one `__m256`. Only instantiated behind
/// `#[target_feature(enable = "avx2")]` wrappers after runtime
/// detection. FMA is deliberately **not** enabled or used: fusing would
/// change rounding versus the SSE2/scalar backends and break the
/// cross-ISA bit-identity contract.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2V(std::arch::x86_64::__m256);

#[cfg(target_arch = "x86_64")]
impl F32x8 for Avx2V {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_set1_ps(v)) }
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        assert!(src.len() >= LANES, "load needs 8 elements");
        // SAFETY: length checked above.
        unsafe { Self::load_ptr(src.as_ptr()) }
    }

    #[inline(always)]
    fn load_stride2(src: &[f32]) -> Self {
        assert!(src.len() >= 15, "load_stride2 needs 15 elements");
        // SAFETY: length checked above.
        unsafe { Self::load_stride2_ptr(src.as_ptr()) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        assert!(dst.len() >= LANES, "store needs 8 elements");
        // SAFETY: length checked above.
        unsafe { self.store_ptr(dst.as_mut_ptr()) }
    }

    #[inline(always)]
    unsafe fn load_ptr(src: *const f32) -> Self {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees 8 readable elements.
        unsafe { Avx2V(_mm256_loadu_ps(src)) }
    }

    #[inline(always)]
    unsafe fn load_stride2_ptr(src: *const f32) -> Self {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees 15 readable elements.
        unsafe {
            // pa = s0..s7 supplies even lanes 0–3; pb starts at 7 (last
            // element read is src[14]) and supplies lanes 4–7 from its
            // odd positions s8, s10, s12, s14.
            let pa = _mm256_loadu_ps(src);
            let pb = _mm256_loadu_ps(src.add(7));
            let ia = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
            let ib = _mm256_setr_epi32(0, 0, 0, 0, 1, 3, 5, 7);
            let ea = _mm256_permutevar8x32_ps(pa, ia);
            let eb = _mm256_permutevar8x32_ps(pb, ib);
            Avx2V(_mm256_blend_ps::<0b1111_0000>(ea, eb))
        }
    }

    #[inline(always)]
    unsafe fn store_ptr(self, dst: *mut f32) {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees 8 writable elements.
        unsafe { _mm256_storeu_ps(dst, self.0) }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_add_ps(self.0, o.0)) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_sub_ps(self.0, o.0)) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_mul_ps(self.0, o.0)) }
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_min_ps(self.0, o.0)) }
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_max_ps(self.0, o.0)) }
    }

    #[inline(always)]
    fn abs(self) -> Self {
        use std::arch::x86_64::*;
        unsafe {
            let m = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
            Avx2V(_mm256_and_ps(self.0, m))
        }
    }

    #[inline(always)]
    fn less_than(self, o: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_cmp_ps::<_CMP_LT_OQ>(self.0, o.0)) }
    }

    #[inline(always)]
    fn select(mask: Self, if_true: Self, if_false: Self) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2V(_mm256_blendv_ps(if_false.0, if_true.0, mask.0)) }
    }

    #[inline(always)]
    fn reduce_add(self) -> f32 {
        use std::arch::x86_64::*;
        unsafe {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps::<1>(self.0);
            let s = _mm_add_ps(lo, hi);
            let t = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let r = _mm_add_ss(t, _mm_shuffle_ps::<0b01>(t, t));
            _mm_cvtss_f32(r)
        }
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        self.store(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Elementwise tail kernels (bias add, ReLU/ReLU6, BN apply, SGD update)
// ---------------------------------------------------------------------------

/// Expands one generic elementwise kernel into an AVX2
/// `#[target_feature]` wrapper plus a public dispatcher over the active
/// backend. The generic body is `#[inline(always)]`, so inside the
/// wrapper the [`Avx2V`] intrinsics inline into an AVX2-enabled context.
macro_rules! elementwise {
    (
        $(#[$doc:meta])*
        $name:ident / $avx2:ident = $generic:ident ( $($arg:ident : $ty:ty),* $(,)? )
    ) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) {
            $generic::<Avx2V>($($arg),*)
        }

        $(#[$doc])*
        pub fn $name($($arg: $ty),*) {
            match active() {
                Backend::Scalar => $generic::<ScalarV>($($arg),*),
                #[cfg(target_arch = "x86_64")]
                Backend::Sse2 => $generic::<Sse2V>($($arg),*),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the Avx2 backends are only ever stored after a
                // successful runtime `avx2` detection.
                Backend::Avx2 | Backend::Avx2Pair => unsafe { $avx2($($arg),*) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!("x86 backends are never active off x86_64"),
            }
        }
    };
}

#[inline(always)]
fn relu_g<V: F32x8>(xs: &mut [f32]) {
    let zero = V::splat(0.0);
    let n8 = vector_cover(xs.len());
    for j in (0..n8).step_by(LANES) {
        V::load(&xs[j..]).max(zero).store(&mut xs[j..]);
    }
    for v in &mut xs[n8..] {
        *v = if *v > 0.0 { *v } else { 0.0 };
    }
}

elementwise! {
    /// In-place ReLU with `maxps` semantics (`max(x, 0)`; NaN and `-0.0`
    /// become `+0.0`).
    relu_inplace / relu_avx2 = relu_g(xs: &mut [f32])
}

#[inline(always)]
fn relu6_g<V: F32x8>(xs: &mut [f32]) {
    let zero = V::splat(0.0);
    let six = V::splat(6.0);
    let n8 = vector_cover(xs.len());
    for j in (0..n8).step_by(LANES) {
        V::load(&xs[j..]).max(zero).min(six).store(&mut xs[j..]);
    }
    for v in &mut xs[n8..] {
        let t = if *v > 0.0 { *v } else { 0.0 };
        *v = if t < 6.0 { t } else { 6.0 };
    }
}

elementwise! {
    /// In-place ReLU6 with `maxps`/`minps` semantics
    /// (`min(max(x, 0), 6)`; NaN and `-0.0` become `+0.0`).
    relu6_inplace / relu6_avx2 = relu6_g(xs: &mut [f32])
}

#[inline(always)]
fn add_scalar_g<V: F32x8>(xs: &mut [f32], b: f32) {
    let bv = V::splat(b);
    let n8 = vector_cover(xs.len());
    for j in (0..n8).step_by(LANES) {
        V::load(&xs[j..]).add(bv).store(&mut xs[j..]);
    }
    for v in &mut xs[n8..] {
        *v += b;
    }
}

elementwise! {
    /// In-place `x += b` — the per-row bias tail of the convolutions.
    add_scalar_inplace / add_scalar_avx2 = add_scalar_g(xs: &mut [f32], b: f32)
}

#[inline(always)]
fn bn_train_g<V: F32x8>(
    x: &[f32],
    x_hat: &mut [f32],
    y: &mut [f32],
    m: f32,
    inv_std: f32,
    g: f32,
    b: f32,
) {
    let (mv, sv, gv, bv) = (V::splat(m), V::splat(inv_std), V::splat(g), V::splat(b));
    let n8 = vector_cover(x.len());
    for j in (0..n8).step_by(LANES) {
        let xh = V::load(&x[j..]).sub(mv).mul(sv);
        xh.store(&mut x_hat[j..]);
        gv.mul(xh).add(bv).store(&mut y[j..]);
    }
    for j in n8..x.len() {
        let xh = (x[j] - m) * inv_std;
        x_hat[j] = xh;
        y[j] = g * xh + b;
    }
}

elementwise! {
    /// Batch-norm training apply over one channel plane:
    /// `x̂ = (x − m)·inv_std`, `y = g·x̂ + b` — the exact operation
    /// sequence of the previous scalar loop, so results are unchanged.
    bn_apply_train / bn_train_avx2 = bn_train_g(
        x: &[f32], x_hat: &mut [f32], y: &mut [f32], m: f32, inv_std: f32, g: f32, b: f32
    )
}

#[inline(always)]
fn bn_eval_g<V: F32x8>(x: &[f32], y: &mut [f32], m: f32, inv_std: f32, g: f32, b: f32) {
    let (mv, sv, gv, bv) = (V::splat(m), V::splat(inv_std), V::splat(g), V::splat(b));
    let n8 = vector_cover(x.len());
    for j in (0..n8).step_by(LANES) {
        gv.mul(V::load(&x[j..]).sub(mv))
            .mul(sv)
            .add(bv)
            .store(&mut y[j..]);
    }
    for j in n8..x.len() {
        y[j] = g * (x[j] - m) * inv_std + b;
    }
}

elementwise! {
    /// Batch-norm eval apply over one channel plane:
    /// `y = g·(x − m)·inv_std + b` — the exact previous scalar sequence.
    bn_apply_eval / bn_eval_avx2 = bn_eval_g(
        x: &[f32], y: &mut [f32], m: f32, inv_std: f32, g: f32, b: f32
    )
}

#[inline(always)]
fn bn_act_g<V: F32x8>(xs: &mut [f32], m: f32, inv_std: f32, g: f32, b: f32, hi: f32) {
    let (mv, sv, gv, bv) = (V::splat(m), V::splat(inv_std), V::splat(g), V::splat(b));
    let zero = V::splat(0.0);
    let hv = V::splat(hi);
    let n8 = vector_cover(xs.len());
    for j in (0..n8).step_by(LANES) {
        gv.mul(V::load(&xs[j..]).sub(mv))
            .mul(sv)
            .add(bv)
            .max(zero)
            .min(hv)
            .store(&mut xs[j..]);
    }
    for v in &mut xs[n8..] {
        let y = g * (*v - m) * inv_std + b;
        let t = if y > 0.0 { y } else { 0.0 };
        *v = if t < hi { t } else { hi };
    }
}

elementwise! {
    /// Fused batch-norm-eval + clamped-activation store epilogue, in
    /// place over one channel row/plane:
    /// `y = min(max(g·(x − m)·inv_std + b, 0), hi)`.
    ///
    /// The affine part replays [`bn_apply_eval`]'s exact f32 operation
    /// sequence; the clamp replays [`relu6_inplace`]'s `maxps`/`minps`
    /// semantics (NaN and `-0.0` become `+0.0`). Pass
    /// `hi = f32::INFINITY` for plain ReLU — `min(x, +∞)` returns any
    /// non-NaN `x` bitwise unchanged (and the preceding `max(x, 0)`
    /// already mapped NaN to `+0.0`), so the extra op is value-neutral
    /// and [`relu_inplace`]-compatible. Every element's value depends
    /// only on its own input, never on its position relative to the
    /// vector/tail boundary, so applying this kernel to row tiles vs
    /// whole planes is bit-identical — the property the fused bundle
    /// executor ([`crate::fused`]) relies on.
    bn_act_inplace / bn_act_avx2 = bn_act_g(
        xs: &mut [f32], m: f32, inv_std: f32, g: f32, b: f32, hi: f32
    )
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn sgd_g<V: F32x8>(
    val: &mut [f32],
    grad: &[f32],
    vel: &mut [f32],
    lr: f32,
    momentum: f32,
    decay: f32,
    clip: Option<f32>,
) {
    let inf = V::splat(f32::INFINITY);
    let zero = V::splat(0.0);
    let (mv, dv, lv) = (V::splat(momentum), V::splat(decay), V::splat(lr));
    let n8 = vector_cover(val.len());
    for j in (0..n8).step_by(LANES) {
        // Non-finite gradients are dropped (|g| < ∞ is false for ±∞ and
        // NaN), then the optional clip bounds the rest — replicating the
        // scalar `is_finite`/`clamp` update exactly for finite inputs.
        let g0 = V::load(&grad[j..]);
        let mut g = V::select(g0.abs().less_than(inf), g0, zero);
        if let Some(c) = clip {
            g = g.max(V::splat(-c)).min(V::splat(c));
        }
        let vj = V::load(&vel[j..]);
        let valj = V::load(&val[j..]);
        // vel = momentum·vel + g + decay·val (left-associated)
        let newv = mv.mul(vj).add(g).add(dv.mul(valj));
        newv.store(&mut vel[j..]);
        // val -= lr·vel
        valj.sub(lv.mul(newv)).store(&mut val[j..]);
    }
    for j in n8..val.len() {
        let g0 = grad[j];
        let mut g = if g0.is_finite() { g0 } else { 0.0 };
        if let Some(c) = clip {
            g = if g > -c { g } else { -c };
            g = if g < c { g } else { c };
        }
        vel[j] = momentum * vel[j] + g + decay * val[j];
        val[j] -= lr * vel[j];
    }
}

elementwise! {
    /// One SGD-with-momentum axpy update over a parameter slice:
    /// drop non-finite gradients, optionally clip to `[-c, c]`, then
    /// `vel = momentum·vel + g + decay·val; val -= lr·vel` — the exact
    /// operation sequence of the previous scalar optimizer loop.
    ///
    /// # Panics
    ///
    /// Panics when `grad` or `vel` are shorter than `val`.
    sgd_axpy_update / sgd_avx2 = sgd_g(
        val: &mut [f32],
        grad: &[f32],
        vel: &mut [f32],
        lr: f32,
        momentum: f32,
        decay: f32,
        clip: Option<f32>,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample15() -> [f32; 15] {
        std::array::from_fn(|i| (i as f32 * 0.73).sin() * 3.0)
    }

    fn check_backend_eq<V: F32x8>() {
        let src = sample15();
        let a = V::load(&src);
        let o = ScalarV::load(&src);
        assert_eq!(a.to_array(), o.to_array(), "load");
        assert_eq!(
            V::load_stride2(&src).to_array(),
            ScalarV::load_stride2(&src).to_array(),
            "load_stride2"
        );
        let b = V::splat(-1.25);
        let ob = ScalarV::splat(-1.25);
        assert_eq!(a.add(b).to_array(), o.add(ob).to_array(), "add");
        assert_eq!(a.sub(b).to_array(), o.sub(ob).to_array(), "sub");
        assert_eq!(a.mul(b).to_array(), o.mul(ob).to_array(), "mul");
        assert_eq!(a.min(b).to_array(), o.min(ob).to_array(), "min");
        assert_eq!(a.max(b).to_array(), o.max(ob).to_array(), "max");
        assert_eq!(a.abs().to_array(), o.abs().to_array(), "abs");
        assert_eq!(
            a.reduce_add().to_bits(),
            o.reduce_add().to_bits(),
            "reduce_add"
        );
        let m = V::load(&src).less_than(b);
        let om = ScalarV::load(&src).less_than(ob);
        assert_eq!(
            m.to_array().map(f32::to_bits),
            om.to_array().map(f32::to_bits),
            "less_than"
        );
        assert_eq!(
            V::select(m, a, b).to_array(),
            ScalarV::select(om, o, ob).to_array(),
            "select"
        );
    }

    #[test]
    fn scalar_reduce_tree_is_fixed() {
        let v = ScalarV(std::array::from_fn(|i| (i + 1) as f32));
        // ((1+5)+(3+7)) + ((2+6)+(4+8)) = 36
        assert_eq!(v.reduce_add(), 36.0);
    }

    #[test]
    fn scalar_minmax_replays_sse_semantics() {
        let a = ScalarV::splat(f32::NAN);
        let b = ScalarV::splat(1.0);
        // Second operand wins on NaN.
        assert_eq!(a.max(b).to_array()[0], 1.0);
        assert_eq!(a.min(b).to_array()[0], 1.0);
        assert!(b.max(a).to_array()[0].is_nan());
        // -0.0 vs +0.0: compares equal, second operand wins.
        let nz = ScalarV::splat(-0.0);
        let pz = ScalarV::splat(0.0);
        assert_eq!(nz.max(pz).to_array()[0].to_bits(), 0.0f32.to_bits());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_matches_scalar_oracle() {
        check_backend_eq::<Sse2V>();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar_oracle() {
        if !Backend::Avx2.is_available() {
            return;
        }
        #[target_feature(enable = "avx2")]
        unsafe fn run() {
            check_backend_eq::<Avx2V>();
        }
        unsafe { run() }
    }

    #[test]
    fn load_stride2_reads_even_lanes_only() {
        let src = sample15();
        let want: [f32; 8] = std::array::from_fn(|j| src[2 * j]);
        assert_eq!(ScalarV::load_stride2(&src).to_array(), want);
    }

    #[test]
    fn available_backends_starts_with_scalar() {
        let all = available_backends();
        assert_eq!(all[0], Backend::Scalar);
        assert!(all.iter().all(|b| b.is_available()));
    }

    #[test]
    fn avx2pair_tracks_avx2_availability() {
        assert_eq!(
            Backend::Avx2Pair.is_available(),
            Backend::Avx2.is_available()
        );
        let all = available_backends();
        assert_eq!(
            all.contains(&Backend::Avx2Pair),
            Backend::Avx2.is_available()
        );
    }

    /// Pins the unknown-`SKYNET_SIMD` hard-error wording: it must list
    /// every accepted value, including the pairing tier.
    #[test]
    fn unknown_simd_value_error_lists_all_accepted_values() {
        let msg = unknown_simd_value_message("turbo");
        assert_eq!(
            msg,
            "SKYNET_SIMD=\"turbo\" is not a backend (expected scalar|sse2|avx2|avx2pair|auto)"
        );
        for accepted in ["scalar", "sse2", "avx2", "avx2pair", "auto"] {
            assert!(msg.contains(accepted), "message must list {accepted:?}");
        }
    }

    #[test]
    fn elementwise_kernels_match_reference() {
        let mut xs: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.5).collect();
        let mut ys = xs.clone();
        relu6_inplace(&mut xs);
        for v in &mut ys {
            *v = v.clamp(0.0, 6.0);
        }
        assert_eq!(xs, ys);

        let mut val: Vec<f32> = (0..19).map(|i| i as f32 * 0.1).collect();
        let grad: Vec<f32> = (0..19)
            .map(|i| if i == 7 { f32::NAN } else { (i as f32).cos() })
            .collect();
        let mut vel = vec![0.5f32; 19];
        let (mut val2, mut vel2) = (val.clone(), vel.clone());
        sgd_axpy_update(&mut val, &grad, &mut vel, 0.1, 0.9, 0.01, Some(0.5));
        for j in 0..19 {
            let g = if grad[j].is_finite() { grad[j] } else { 0.0 };
            let g = g.clamp(-0.5, 0.5);
            vel2[j] = 0.9 * vel2[j] + g + 0.01 * val2[j];
            val2[j] -= 0.1 * vel2[j];
        }
        assert_eq!(val, val2);
        assert_eq!(vel, vel2);
    }
}
