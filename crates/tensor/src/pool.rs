//! Max-pooling with argmax bookkeeping.
//!
//! SkyNet uses three 2×2 stride-2 max-pool layers (Table 3). The forward
//! pass records the flat index of each window's winner so the backward pass
//! can route gradients without recomputing the comparison.

use crate::parallel::{par_chunks_mut, par_chunks_mut2};
use crate::telemetry;
use crate::{Result, Shape, Tensor, TensorError};

/// Result of [`maxpool2d`]: the pooled map plus the winner indices needed
/// by [`maxpool2d_backward`].
#[derive(Debug, Clone)]
pub struct PoolOutput {
    /// Pooled feature map.
    pub output: Tensor,
    /// For every output element, the flat index (into the input buffer) of
    /// the element that won the max.
    pub argmax: Vec<u32>,
}

/// 2-D max pooling with a square `k×k` window and stride `k`
/// (non-overlapping, as in the paper).
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] when `k == 0` or the spatial
/// extents are not divisible by `k`.
pub fn maxpool2d(input: &Tensor, k: usize) -> Result<PoolOutput> {
    if k == 0 {
        return Err(TensorError::InvalidDimension {
            op: "maxpool2d",
            detail: "window size must be positive".into(),
        });
    }
    let is = input.shape();
    if !is.h.is_multiple_of(k) || !is.w.is_multiple_of(k) {
        return Err(TensorError::InvalidDimension {
            op: "maxpool2d",
            detail: format!("spatial extents {}×{} not divisible by {k}", is.h, is.w),
        });
    }
    let os = is.with_hw(is.h / k, is.w / k);
    let mut out = Tensor::zeros(os);
    let mut argmax = vec![0u32; os.numel()];
    let src = input.as_slice();
    let _span = telemetry::span("tensor.pool_fwd");
    telemetry::record_call("tensor.pool.fwd_calls", 1);
    if os.plane() == 0 {
        return Ok(PoolOutput {
            output: out,
            argmax,
        });
    }
    // Each (item, channel) plane pools independently; argmax indices stay
    // global (into the full input buffer), as in the serial kernel.
    par_chunks_mut2(
        out.as_mut_slice(),
        os.plane(),
        &mut argmax,
        os.plane(),
        |plane, dst, am| {
            let base = plane * is.plane();
            let mut oi = 0usize;
            for oy in 0..os.h {
                for ox in 0..os.w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        let row = base + (oy * k + ky) * is.w + ox * k;
                        for kx in 0..k {
                            let v = src[row + kx];
                            if v > best {
                                best = v;
                                best_idx = row + kx;
                            }
                        }
                    }
                    dst[oi] = best;
                    am[oi] = best_idx as u32;
                    oi += 1;
                }
            }
        },
    );
    Ok(PoolOutput {
        output: out,
        argmax,
    })
}

/// Backward pass of [`maxpool2d`]: scatters each output gradient to the
/// input position that won the forward max.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `grad_out`'s element count
/// differs from the recorded argmax length.
pub fn maxpool2d_backward(input_shape: Shape, argmax: &[u32], grad_out: &Tensor) -> Result<Tensor> {
    if grad_out.shape().numel() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            op: "maxpool2d_backward",
            expected: format!("{} grad elements", argmax.len()),
            got: grad_out.shape().to_string(),
        });
    }
    let mut gi = Tensor::zeros(input_shape);
    let planes = input_shape.n * input_shape.c;
    let go = grad_out.as_slice();
    let _span = telemetry::span("tensor.pool_bwd");
    telemetry::record_call("tensor.pool.bwd_calls", 1);
    if planes > 0 && argmax.len().is_multiple_of(planes) && input_shape.plane() > 0 {
        // Argmax indices produced by `maxpool2d` always point inside
        // their own (item, channel) plane, so the scatter decomposes
        // into independent per-plane tasks.
        let out_plane = argmax.len() / planes;
        par_chunks_mut(gi.as_mut_slice(), input_shape.plane(), |plane, gi_plane| {
            let ibase = plane * input_shape.plane();
            let obase = plane * out_plane;
            for oi in obase..obase + out_plane {
                gi_plane[argmax[oi] as usize - ibase] += go[oi];
            }
        });
    } else {
        let dst = gi.as_mut_slice();
        for (&idx, &g) in argmax.iter().zip(go) {
            dst[idx as usize] += g;
        }
    }
    Ok(gi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_2x2_picks_max() {
        let x = Tensor::from_vec(
            Shape::new(1, 1, 2, 4),
            vec![1.0, 5.0, 3.0, 2.0, 4.0, 0.0, -1.0, 9.0],
        )
        .unwrap();
        let p = maxpool2d(&x, 2).unwrap();
        assert_eq!(p.output.shape(), Shape::new(1, 1, 1, 2));
        assert_eq!(p.output.as_slice(), &[5.0, 9.0]);
        assert_eq!(p.argmax, vec![1, 7]);
    }

    #[test]
    fn pool_handles_negative_values() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![-4.0, -1.0, -3.0, -2.0]).unwrap();
        let p = maxpool2d(&x, 2).unwrap();
        assert_eq!(p.output.as_slice(), &[-1.0]);
    }

    #[test]
    fn rejects_indivisible_extent() {
        let x = Tensor::zeros(Shape::new(1, 1, 3, 4));
        assert!(maxpool2d(&x, 2).is_err());
        assert!(maxpool2d(&x, 0).is_err());
    }

    #[test]
    fn backward_routes_to_winner() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 4.0, 2.0, 3.0]).unwrap();
        let p = maxpool2d(&x, 2).unwrap();
        let go = Tensor::from_vec(Shape::new(1, 1, 1, 1), vec![2.5]).unwrap();
        let gi = maxpool2d_backward(x.shape(), &p.argmax, &go).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn pool_multichannel_batched() {
        let s = Shape::new(2, 3, 4, 4);
        let x = Tensor::from_vec(s, (0..s.numel()).map(|i| i as f32).collect()).unwrap();
        let p = maxpool2d(&x, 2).unwrap();
        assert_eq!(p.output.shape(), Shape::new(2, 3, 2, 2));
        // In a monotonically increasing map the bottom-right of each window
        // wins.
        assert_eq!(p.output.at(0, 0, 0, 0), x.at(0, 0, 1, 1));
        assert_eq!(p.output.at(1, 2, 1, 1), x.at(1, 2, 3, 3));
    }
}
