//! # skynet-tensor
//!
//! A small, dependency-light NCHW tensor library purpose-built for the
//! SkyNet reproduction. It provides the dense `f32` [`Tensor`] type plus the
//! forward *and* backward kernels needed to train and run compact
//! convolutional detectors on a CPU:
//!
//! * standard convolution via [`im2col`](conv) + blocked [`matmul`],
//! * 3×3 depth-wise convolution with direct loops ([`dwconv`]),
//! * 1×1 point-wise convolution as a batched matrix product,
//! * 2×2 max-pooling with argmax bookkeeping ([`pool`]),
//! * the feature-map **reorg** (space-to-depth) operator from Fig. 5 of the
//!   paper ([`reorg`]),
//! * element-wise activations (ReLU / ReLU6) and channel concatenation
//!   ([`ops`]).
//!
//! The library deliberately avoids an autograd tape: each kernel exposes an
//! explicit `*_backward` companion, and the layer objects in `skynet-nn`
//! cache whatever forward state the backward pass needs. This keeps the
//! memory behaviour predictable, which is the property the paper's
//! hardware-aware flow cares about.
//!
//! The [`fused`] module executes a whole SkyNet bundle
//! (`DW-Conv3 → BN → Act → PW → BN → Act`) over cache-resident row
//! tiles, bit-identical to the layer-by-layer path; [`fusion`] is the
//! `SKYNET_FUSION` runtime toggle that selects between them (the
//! unfused path stays on as the equivalence oracle).
//!
//! The [`qint`] module adds the executable INT8 twin of the hot
//! kernels: `i8`×`i8`→`i32` matmul / point-wise / 3×3 depth-wise
//! convolutions on 32-lane integer SIMD (same `SKYNET_SIMD` dispatch,
//! structurally bit-identical across backends), plus the scalar
//! quantize/requantize epilogues (see `QUANTIZATION.md` at the repo
//! root).
//!
//! Five infrastructure modules back the kernels: [`parallel`], the
//! deterministic batch-parallel execution engine (bit-identical results
//! for any `SKYNET_THREADS`); [`simd`], the fixed-width 8-lane vector
//! abstraction with runtime-dispatched AVX2/SSE2/scalar backends that
//! are bit-identical to each other (`SKYNET_SIMD` forces one, extending
//! the determinism guarantee across ISAs); [`telemetry`], the
//! process-wide metrics registry + scoped-span tracer that every hot
//! kernel reports into when `SKYNET_METRICS`/`SKYNET_TRACE` are set;
//! [`scratch`], the thread-local scratch arena that keeps kernel
//! temporaries off the allocator in steady state (and hands out
//! 32-byte-aligned buffers for the vector kernels); and [`alloc`], the
//! global-allocator tap behind `SKYNET_ALLOC_STATS` that proves it (see
//! `OBSERVABILITY.md` at the repo root).
//!
//! ## Example
//!
//! ```
//! use skynet_tensor::{Tensor, Shape};
//!
//! // A 1×3×4×4 feature map filled with ones.
//! let x = Tensor::ones(Shape::new(1, 3, 4, 4));
//! assert_eq!(x.shape().numel(), 48);
//! let doubled = x.map(|v| v * 2.0);
//! assert_eq!(doubled.as_slice()[0], 2.0);
//! ```

#![deny(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod alloc;
pub mod conv;
pub mod crc32;
pub mod dwconv;
pub mod fused;
pub mod fusion;
pub mod matmul;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod qint;
pub mod reorg;
pub mod rng;
pub mod scratch;
pub mod simd;
pub mod telemetry;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
