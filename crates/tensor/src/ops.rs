//! Element-wise and structural operators: activations, channel
//! concatenation, per-channel statistics and bilinear resizing.
//!
//! The activations run through the 8-lane [`crate::simd`] kernels
//! with x86 `maxps`/`minps` semantics on every backend: `-0.0` and NaN
//! inputs map to `+0.0` (the second operand of `max(x, 0)` wins on NaN
//! and on the signed-zero tie). Finite positive inputs — everything a
//! convolution output can be in practice — are unchanged versus the old
//! `f32::max`/`clamp` formulation.

use crate::{simd, Result, Tensor, TensorError};

/// Forward ReLU: `max(x, 0)` (lane-parallel, `maxps` semantics).
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    simd::record_lanes("relu", simd::vector_cover(out.as_slice().len()));
    simd::relu_inplace(out.as_mut_slice());
    out
}

/// Backward ReLU: passes gradient where the *input* was positive.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn relu_backward(input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
    mask_backward(input, grad_out, |v| v > 0.0)
}

/// Forward ReLU6: `min(max(x, 0), 6)` (Sandler et al., 2018).
///
/// The clipped range is what makes low-bit fixed-point feature maps viable
/// on the FPGA (§5.2 of the paper).
pub fn relu6(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    simd::record_lanes("relu6", simd::vector_cover(out.as_slice().len()));
    simd::relu6_inplace(out.as_mut_slice());
    out
}

/// Backward ReLU6: passes gradient on the open interval `(0, 6)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn relu6_backward(input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
    mask_backward(input, grad_out, |v| v > 0.0 && v < 6.0)
}

fn mask_backward(input: &Tensor, grad_out: &Tensor, pass: impl Fn(f32) -> bool) -> Result<Tensor> {
    if input.shape() != grad_out.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "activation backward",
            expected: input.shape().to_string(),
            got: grad_out.shape().to_string(),
        });
    }
    let data = input
        .as_slice()
        .iter()
        .zip(grad_out.as_slice())
        .map(|(&x, &g)| if pass(x) { g } else { 0.0 })
        .collect();
    Tensor::from_vec(input.shape(), data)
}

/// Concatenates two tensors along the channel axis. This is the bypass
/// merge point in SkyNet models B and C.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when batch or spatial extents
/// differ.
pub fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (sa, sb) = (a.shape(), b.shape());
    if sa.n != sb.n || sa.h != sb.h || sa.w != sb.w {
        return Err(TensorError::ShapeMismatch {
            op: "concat_channels",
            expected: format!("[{}, *, {}, {}]", sa.n, sa.h, sa.w),
            got: sb.to_string(),
        });
    }
    let os = sa.with_c(sa.c + sb.c);
    let mut out = Tensor::zeros(os);
    let dst = out.as_mut_slice();
    let plane = sa.plane();
    for n in 0..sa.n {
        let dst_base = n * os.item_numel();
        dst[dst_base..dst_base + sa.c * plane]
            .copy_from_slice(&a.as_slice()[n * sa.item_numel()..(n + 1) * sa.item_numel()]);
        dst[dst_base + sa.c * plane..dst_base + os.c * plane]
            .copy_from_slice(&b.as_slice()[n * sb.item_numel()..(n + 1) * sb.item_numel()]);
    }
    Ok(out)
}

/// Splits a gradient flowing into [`concat_channels`] back into the two
/// branch gradients. `c_a` is the channel count of the first branch.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] when `c_a` exceeds the channel
/// count of `grad`.
pub fn split_channels(grad: &Tensor, c_a: usize) -> Result<(Tensor, Tensor)> {
    let s = grad.shape();
    if c_a > s.c {
        return Err(TensorError::InvalidDimension {
            op: "split_channels",
            detail: format!("split point {c_a} exceeds {} channels", s.c),
        });
    }
    let sa = s.with_c(c_a);
    let sb = s.with_c(s.c - c_a);
    let mut a = Tensor::zeros(sa);
    let mut b = Tensor::zeros(sb);
    let plane = s.plane();
    for n in 0..s.n {
        let src = &grad.as_slice()[n * s.item_numel()..(n + 1) * s.item_numel()];
        a.as_mut_slice()[n * sa.item_numel()..(n + 1) * sa.item_numel()]
            .copy_from_slice(&src[..c_a * plane]);
        b.as_mut_slice()[n * sb.item_numel()..(n + 1) * sb.item_numel()]
            .copy_from_slice(&src[c_a * plane..]);
    }
    Ok((a, b))
}

/// Per-channel mean over batch and spatial axes (the batch-norm statistic).
pub fn channel_mean(x: &Tensor) -> Vec<f32> {
    let s = x.shape();
    let mut mean = vec![0.0f32; s.c];
    let plane = s.plane();
    for n in 0..s.n {
        for (c, m) in mean.iter_mut().enumerate() {
            let base = (n * s.c + c) * plane;
            *m += x.as_slice()[base..base + plane].iter().sum::<f32>();
        }
    }
    let denom = (s.n * plane) as f32;
    for m in &mut mean {
        *m /= denom;
    }
    mean
}

/// Per-channel (biased) variance over batch and spatial axes.
pub fn channel_var(x: &Tensor, mean: &[f32]) -> Vec<f32> {
    let s = x.shape();
    let mut var = vec![0.0f32; s.c];
    let plane = s.plane();
    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * plane;
            let m = mean[c];
            var[c] += x.as_slice()[base..base + plane]
                .iter()
                .map(|&v| (v - m) * (v - m))
                .sum::<f32>();
        }
    }
    let denom = (s.n * plane) as f32;
    for v in &mut var {
        *v /= denom;
    }
    var
}

/// Bilinear resize of every batch item to `(new_h, new_w)`.
///
/// Used for the paper's input-resizing optimization (Table 1, opt ①),
/// multi-scale training (§6.1) and the resize-factor sweep of Fig. 2(b).
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] when a target extent is zero.
pub fn resize_bilinear(x: &Tensor, new_h: usize, new_w: usize) -> Result<Tensor> {
    if new_h == 0 || new_w == 0 {
        return Err(TensorError::InvalidDimension {
            op: "resize_bilinear",
            detail: "target extents must be positive".into(),
        });
    }
    let s = x.shape();
    let os = s.with_hw(new_h, new_w);
    if (new_h, new_w) == (s.h, s.w) {
        return Ok(x.clone());
    }
    let mut out = Tensor::zeros(os);
    resize_bilinear_into(x, new_h, new_w, out.as_mut_slice())?;
    Ok(out)
}

/// [`resize_bilinear`] writing into a caller-provided buffer of
/// `x.numel() / (h·w) · new_h · new_w` floats — the allocation-free form
/// the trainer's batch gather uses to fill one slot of a preallocated
/// batch tensor. The identity case degenerates to a copy; the resampling
/// arithmetic is element-for-element the one in [`resize_bilinear`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] when a target extent is zero
/// or `out` has the wrong length.
pub fn resize_bilinear_into(x: &Tensor, new_h: usize, new_w: usize, out: &mut [f32]) -> Result<()> {
    if new_h == 0 || new_w == 0 {
        return Err(TensorError::InvalidDimension {
            op: "resize_bilinear",
            detail: "target extents must be positive".into(),
        });
    }
    let s = x.shape();
    let os = s.with_hw(new_h, new_w);
    if out.len() != os.numel() {
        return Err(TensorError::InvalidDimension {
            op: "resize_bilinear",
            detail: format!(
                "output buffer holds {} floats, need {}",
                out.len(),
                os.numel()
            ),
        });
    }
    if (new_h, new_w) == (s.h, s.w) {
        out.copy_from_slice(x.as_slice());
        return Ok(());
    }
    let sy = if new_h > 1 {
        (s.h - 1) as f32 / (new_h - 1) as f32
    } else {
        0.0
    };
    let sx = if new_w > 1 {
        (s.w - 1) as f32 / (new_w - 1) as f32
    } else {
        0.0
    };
    for n in 0..s.n {
        for c in 0..s.c {
            let base = (n * s.c + c) * s.plane();
            let src = &x.as_slice()[base..base + s.plane()];
            let obase = (n * os.c + c) * os.plane();
            for oy in 0..new_h {
                let fy = oy as f32 * sy;
                let y0 = fy.floor() as usize;
                let y1 = (y0 + 1).min(s.h - 1);
                let wy = fy - y0 as f32;
                for ox in 0..new_w {
                    let fx = ox as f32 * sx;
                    let x0 = fx.floor() as usize;
                    let x1 = (x0 + 1).min(s.w - 1);
                    let wx = fx - x0 as f32;
                    let v = src[y0 * s.w + x0] * (1.0 - wy) * (1.0 - wx)
                        + src[y0 * s.w + x1] * (1.0 - wy) * wx
                        + src[y1 * s.w + x0] * wy * (1.0 - wx)
                        + src[y1 * s.w + x1] * wy * wx;
                    out[obase + oy * os.w + ox] = v;
                }
            }
        }
    }
    Ok(())
}

/// Row-wise softmax over an `N×K` logits matrix stored as `Shape(n, k, 1, 1)`.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let s = logits.shape();
    let k = s.item_numel();
    let mut out = logits.clone();
    for n in 0..s.n {
        let row = &mut out.as_mut_slice()[n * k..(n + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean cross-entropy loss of `N×K` logits against integer labels, plus the
/// logits gradient (softmax − one-hot, scaled by `1/N`).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is out
/// of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let s = logits.shape();
    let k = s.item_numel();
    assert_eq!(labels.len(), s.n, "one label per batch item");
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_n = 1.0 / s.n as f32;
    for (n, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        let p = probs.as_slice()[n * k + label].max(1e-12);
        loss -= p.ln();
        let row = &mut grad.as_mut_slice()[n * k..(n + 1) * k];
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    (loss * inv_n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn relu_and_relu6_clip_correctly() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 5), vec![-2.0, 0.0, 3.0, 6.0, 9.0]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 3.0, 6.0, 9.0]);
        assert_eq!(relu6(&x).as_slice(), &[0.0, 0.0, 3.0, 6.0, 6.0]);
    }

    #[test]
    fn activation_gradients_mask_correctly() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 5), vec![-2.0, 0.5, 3.0, 6.5, 9.0]).unwrap();
        let g = Tensor::ones(x.shape());
        assert_eq!(
            relu_backward(&x, &g).unwrap().as_slice(),
            &[0.0, 1.0, 1.0, 1.0, 1.0]
        );
        assert_eq!(
            relu6_backward(&x, &g).unwrap().as_slice(),
            &[0.0, 1.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn concat_then_split_roundtrips() {
        let a =
            Tensor::from_vec(Shape::new(2, 1, 2, 2), (0..8).map(|i| i as f32).collect()).unwrap();
        let b = Tensor::from_vec(
            Shape::new(2, 2, 2, 2),
            (0..16).map(|i| 100.0 + i as f32).collect(),
        )
        .unwrap();
        let cat = concat_channels(&a, &b).unwrap();
        assert_eq!(cat.shape(), Shape::new(2, 3, 2, 2));
        assert_eq!(cat.at(0, 0, 0, 0), 0.0);
        assert_eq!(cat.at(0, 1, 0, 0), 100.0);
        assert_eq!(cat.at(1, 0, 0, 0), 4.0);
        let (ga, gb) = split_channels(&cat, 1).unwrap();
        assert_eq!(ga, a);
        assert_eq!(gb, b);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(Shape::new(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::new(1, 1, 4, 4));
        assert!(concat_channels(&a, &b).is_err());
    }

    #[test]
    fn channel_statistics() {
        // Channel 0 constant 2.0, channel 1 alternating 0/4.
        let x = Tensor::from_vec(
            Shape::new(1, 2, 1, 4),
            vec![2.0, 2.0, 2.0, 2.0, 0.0, 4.0, 0.0, 4.0],
        )
        .unwrap();
        let m = channel_mean(&x);
        assert_eq!(m, vec![2.0, 2.0]);
        let v = channel_var(&x, &m);
        assert_eq!(v, vec![0.0, 4.0]);
    }

    #[test]
    fn resize_identity_and_downscale() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(resize_bilinear(&x, 2, 2).unwrap(), x);
        let up = resize_bilinear(&x, 3, 3).unwrap();
        // Center of a bilinear upsample of [0..3] is the average.
        assert!((up.at(0, 0, 1, 1) - 1.5).abs() < 1e-5);
        assert_eq!(up.at(0, 0, 0, 0), 0.0);
        assert_eq!(up.at(0, 0, 2, 2), 3.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits =
            Tensor::from_vec(Shape::new(2, 3, 1, 1), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax_rows(&logits);
        for n in 0..2 {
            let s: f32 = p.as_slice()[n * 3..(n + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let logits = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0.0, 0.0, 0.0]).unwrap();
        let (loss, grad) = cross_entropy(&logits, &[1]);
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
        let g = grad.as_slice();
        assert!((g[0] - 1.0 / 3.0).abs() < 1e-5);
        assert!((g[1] + 2.0 / 3.0).abs() < 1e-5);
        assert!((g[2] - 1.0 / 3.0).abs() < 1e-5);
    }
}

/// Symmetric per-tensor fake quantization to `bits` total bits.
///
/// Values are scaled by `Δ = max|x| / (2^{bits−1} − 1)`, rounded to the
/// nearest integer level, clamped to the signed range and rescaled — the
/// standard simulation of fixed-point hardware arithmetic used for the
/// paper's quantization studies (Fig. 2(a), Table 7).
///
/// A zero tensor (or `bits == 0`) is returned unchanged; `bits ≥ 24`
/// exceeds the f32 mantissa and is also treated as a no-op.
pub fn fake_quantize(x: &Tensor, bits: u8) -> Tensor {
    if bits == 0 || bits >= 24 {
        return x.clone();
    }
    let max_abs = x.max_abs();
    if max_abs == 0.0 {
        return x.clone();
    }
    let levels = ((1u32 << (bits - 1)) - 1) as f32;
    let delta = max_abs / levels;
    x.map(|v| (v / delta).round().clamp(-levels - 1.0, levels) * delta)
}

#[cfg(test)]
mod quant_tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let s = Shape::new(1, 1, 1, 101);
        let x = Tensor::from_vec(s, (0..101).map(|i| (i as f32 * 0.37).sin()).collect()).unwrap();
        let mut last_err = f32::MAX;
        for bits in [4u8, 6, 8, 10, 12] {
            let q = fake_quantize(&x, bits);
            let err = x.sub(&q).unwrap().sq_norm();
            assert!(err <= last_err, "error grew at {bits} bits");
            last_err = err;
        }
    }

    #[test]
    fn high_bits_are_identity() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 3), vec![0.1, -0.7, 0.33]).unwrap();
        assert_eq!(fake_quantize(&x, 24), x);
        assert_eq!(fake_quantize(&x, 0), x);
    }

    #[test]
    fn quantized_values_lie_on_grid() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 4), vec![1.0, 0.3, -0.6, -1.0]).unwrap();
        let q = fake_quantize(&x, 3); // levels = 3, delta = 1/3
        for &v in q.as_slice() {
            let k = v * 3.0;
            assert!((k - k.round()).abs() < 1e-5, "{v} not on grid");
        }
        // Extremes survive.
        assert_eq!(q.as_slice()[0], 1.0);
    }

    #[test]
    fn zero_tensor_unchanged() {
        let x = Tensor::zeros(Shape::new(1, 1, 2, 2));
        assert_eq!(fake_quantize(&x, 8), x);
    }
}
