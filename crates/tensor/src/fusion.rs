//! Runtime toggle for the fused execution plan (`SKYNET_FUSION`).
//!
//! The graph-level execution planner in `skynet-core` rewrites the
//! bundle chain `DW-Conv3 → BN → Act → PW-Conv → BN → Act` into a single
//! cache-blocked fused kernel ([`crate::fused`]). The fused path is
//! engineered to be **bit-identical** to the unfused layer-by-layer
//! path, so the unfused path survives as the equivalence oracle behind
//! this toggle:
//!
//! * `SKYNET_FUSION=on` / `auto` / unset — fused plans enabled (the
//!   default; `auto` and `on` are synonyms today, `auto` reserves room
//!   for geometry-dependent decisions later),
//! * `SKYNET_FUSION=off` — always run the unfused layer path,
//! * anything else — hard error (panic), mirroring the `SKYNET_SIMD`
//!   contract: a typo must never silently change which code runs.
//!
//! [`force`] flips the mode mid-process for equivalence sweeps, exactly
//! like [`crate::simd::force`]. Flipping is safe because both paths
//! produce identical bits; plans already built keep executing fused
//! until their owner rebuilds them.

use crate::telemetry;
use std::sync::atomic::{AtomicU8, Ordering};

/// `STATE` encoding: 0 = unresolved, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

fn store(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    telemetry::record_gauge("fusion.enabled", if on { 1.0 } else { 0.0 });
}

/// Whether fused execution plans are enabled, resolving `SKYNET_FUSION`
/// on first use.
///
/// # Panics
///
/// Panics (hard error, by design) when `SKYNET_FUSION` names an unknown
/// value.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("SKYNET_FUSION").as_deref() {
        Err(_) | Ok("auto") | Ok("") | Ok("on") => true,
        Ok("off") => false,
        Ok(other) => {
            panic!("SKYNET_FUSION={other:?} is not a fusion mode (expected on|off|auto)")
        }
    };
    store(on);
    on
}

/// Forces fusion on or off, e.g. for an equivalence sweep. Safe to flip
/// mid-process: the fused and unfused paths produce bit-identical
/// outputs, so callers cannot observe the change in their results.
pub fn force(on: bool) {
    store(on);
}

/// Human-readable name of the active mode (`"on"` / `"off"`).
pub fn mode_name() -> &'static str {
    if enabled() {
        "on"
    } else {
        "off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_round_trips() {
        let before = enabled();
        force(false);
        assert!(!enabled());
        assert_eq!(mode_name(), "off");
        force(true);
        assert!(enabled());
        assert_eq!(mode_name(), "on");
        force(before);
    }
}
