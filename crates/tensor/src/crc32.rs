//! Streaming CRC-32 (IEEE 802.3 / zlib polynomial).
//!
//! Both on-disk formats in this workspace — the SKYD dataset container
//! (`skynet_data::io`) and the training checkpoint
//! (`skynet_core::checkpoint`) — append a CRC-32 trailer so that silent
//! bit-flips in storage surface as a typed corruption error instead of
//! garbage tensors or diverged training. The helper lives here, in the
//! base crate of the workspace, so every format shares one
//! implementation.
//!
//! This is the reflected CRC-32 with polynomial `0xEDB88320` (the one
//! used by zlib, PNG and Ethernet), table-driven, one byte per step.
//!
//! ```
//! use skynet_tensor::crc32::{crc32, Crc32};
//!
//! // Well-known check value for the ASCII bytes "123456789".
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//!
//! // Streaming over chunks gives the same digest.
//! let mut h = Crc32::new();
//! h.update(b"1234");
//! h.update(b"56789");
//! assert_eq!(h.finalize(), 0xCBF4_3926);
//! ```

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 hasher.
///
/// Feed bytes with [`Crc32::update`] as they are written or read, then
/// compare [`Crc32::finalize`] against the stored trailer.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the digest of everything absorbed so far. The hasher can
    /// keep absorbing afterwards; `finalize` does not consume it.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_values() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 512];
        let clean = crc32(&data);
        for byte in [0usize, 100, 511] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
