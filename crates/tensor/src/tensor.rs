use crate::{Result, Shape, TensorError};

/// A dense, heap-allocated `f32` tensor in NCHW layout.
///
/// `Tensor` is the single value type flowing through every layer, dataset
/// and hardware model in the workspace. It is intentionally plain: a shape
/// plus a contiguous `Vec<f32>`, with element accessors and a handful of
/// bulk helpers. All compute kernels live in the sibling modules
/// ([`conv`](crate::conv), [`dwconv`](crate::dwconv), [`pool`](crate::pool),
/// [`reorg`](crate::reorg), [`ops`](crate::ops)).
///
/// ```
/// use skynet_tensor::{Tensor, Shape};
/// let mut t = Tensor::zeros(Shape::new(1, 1, 2, 2));
/// *t.at_mut(0, 0, 1, 1) = 3.5;
/// assert_eq!(t.at(0, 0, 1, 1), 3.5);
/// assert_eq!(t.sum(), 3.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.numel()],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: Shape) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.numel()],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `data.len()` differs from
    /// `shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor::from_vec",
                expected: format!("{} elements for {shape}", shape.numel()),
                got: format!("{} elements", data.len()),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Read-only view of the underlying buffer in NCHW order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer in NCHW order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline(always)]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert!(n < self.shape.n && c < self.shape.c && h < self.shape.h && w < self.shape.w);
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline(always)]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert!(n < self.shape.n && c < self.shape.c && h < self.shape.h && w < self.shape.w);
        let idx = self.shape.index(n, c, h, w);
        &mut self.data[idx]
    }

    /// Returns a new tensor with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise sum with another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, "Tensor::add", |a, b| a + b)
    }

    /// Element-wise difference (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, "Tensor::sub", |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, "Tensor::mul", |a, b| a * b)
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor::axpy",
                expected: self.shape.to_string(),
                got: other.shape.to_string(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; zero for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value; zero for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Squared L2 norm of the buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Reinterprets the buffer under a new shape with the same element
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.numel() != self.shape.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor::reshape",
                expected: format!("{} elements", self.shape.numel()),
                got: format!("{shape} = {} elements", shape.numel()),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Extracts the `n`-th batch item as a `1×C×H×W` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn batch_item(&self, n: usize) -> Tensor {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let len = self.shape.item_numel();
        let start = n * len;
        Tensor {
            shape: Shape::new(1, self.shape.c, self.shape.h, self.shape.w),
            data: self.data[start..start + len].to_vec(),
        }
    }

    /// Stacks `1×C×H×W` tensors along the batch dimension.
    ///
    /// # Errors
    ///
    /// Returns an error when `items` is empty or the item shapes disagree.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::InvalidDimension {
            op: "Tensor::stack",
            detail: "cannot stack zero tensors".into(),
        })?;
        let s = first.shape();
        let mut data = Vec::with_capacity(s.item_numel() * items.len() * s.n);
        let mut n_total = 0;
        for item in items {
            let is = item.shape();
            if (is.c, is.h, is.w) != (s.c, s.h, s.w) {
                return Err(TensorError::ShapeMismatch {
                    op: "Tensor::stack",
                    expected: s.to_string(),
                    got: is.to_string(),
                });
            }
            n_total += is.n;
            data.extend_from_slice(item.as_slice());
        }
        Ok(Tensor {
            shape: Shape::new(n_total, s.c, s.h, s.w),
            data,
        })
    }
}

impl Tensor {
    fn zip(&self, other: &Tensor, op: &'static str, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                expected: self.shape.to_string(),
                got: other.shape.to_string(),
            });
        }
        Ok(Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = Shape::new(2, 2, 2, 2);
        let mut t = Tensor::zeros(s);
        assert_eq!(t.shape(), s);
        *t.at_mut(1, 1, 1, 1) = 7.0;
        assert_eq!(t.at(1, 1, 1, 1), 7.0);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    fn from_vec_validates_length() {
        let s = Shape::new(1, 1, 2, 2);
        assert!(Tensor::from_vec(s, vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(s, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn arithmetic() {
        let s = Shape::new(1, 1, 1, 3);
        let a = Tensor::from_vec(s, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(s, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::new(1, 1, 1, 3));
        let b = Tensor::zeros(Shape::new(1, 1, 3, 1));
        assert!(a.add(&b).is_err());
        assert!(a.clone().axpy(1.0, &b).is_err());
    }

    #[test]
    fn reductions() {
        let s = Shape::new(1, 1, 1, 4);
        let t = Tensor::from_vec(s, vec![-3.0, 1.0, 2.0, 0.0]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn stack_and_batch_item_roundtrip() {
        let s = Shape::new(1, 2, 1, 2);
        let a = Tensor::from_vec(s, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(s, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let stacked = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(stacked.shape(), Shape::new(2, 2, 1, 2));
        assert_eq!(stacked.batch_item(0), a);
        assert_eq!(stacked.batch_item(1), b);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = t.reshape(Shape::new(1, 4, 1, 1)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape::new(1, 3, 1, 1)).is_err());
    }
}
