use std::fmt;

/// Error type for tensor operations.
///
/// All fallible public functions in this crate return
/// [`Result<T>`](crate::Result) with this error. The variants carry enough
/// context to diagnose shape mismatches without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The shape that was expected.
        expected: String,
        /// The shape that was provided.
        got: String,
    },
    /// A dimension was invalid for the requested operation (e.g. a spatial
    /// size not divisible by the pooling stride).
    InvalidDimension {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Explanation of the constraint that was violated.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, expected, got } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {got}")
            }
            TensorError::InvalidDimension { op, detail } => {
                write!(f, "invalid dimension in {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
