//! Deterministic batch-parallel execution engine.
//!
//! A persistent worker pool executes an indexed task set over a **fixed
//! decomposition**: the mapping from task index to work is chosen by the
//! caller and never depends on the number of threads, and every
//! reduction over task results happens in the calling thread in task
//! order. Together those two rules make every kernel built on this
//! module **bit-identical run-to-run and across thread counts** — the
//! scheduler only decides *when* a task runs, never *what* it computes
//! or in which order partial sums are combined.
//!
//! The pool is sized from [`std::thread::available_parallelism`] and can
//! be overridden with the `SKYNET_THREADS` environment variable (read
//! once, at first use). `SKYNET_THREADS=1` disables the pool entirely:
//! every task runs inline in the caller, which is also the code path
//! used for nested parallelism (a kernel invoked from inside another
//! parallel region runs serially rather than deadlocking the pool).
//!
//! Work distribution is intentionally *work-stealing-free*: tasks are
//! handed out through a single atomic cursor, so the engine has no
//! per-thread deques and no randomized victim selection — nothing whose
//! scheduling could be observed through floating-point results.
//!
//! Because workers are persistent, each one also owns a long-lived
//! [`scratch`](crate::scratch) arena through that module's
//! `thread_local!`: kernel temporaries checked out inside a task are
//! returned to the worker's own arena and reused by the next task that
//! lands on the same thread, with no cross-thread contention.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::telemetry;

/// A published batch of tasks: an erased `Fn(usize)` plus progress
/// counters. The closure pointer is lifetime-erased; soundness comes
/// from [`run_indexed`] blocking until `done == total` before returning,
/// so the borrow always outlives every use.
struct Job {
    /// Erased task body. Only dereferenced between job publication and
    /// completion, both of which happen inside the `run_indexed` call
    /// that owns the underlying closure.
    func: *const (dyn Fn(usize) + Sync),
    /// Next task index to hand out.
    next: AtomicUsize,
    /// Total number of tasks.
    total: usize,
    /// Number of tasks fully executed.
    done: AtomicUsize,
    /// Completion latch: `(all done, first panic message)`.
    finish: Mutex<(bool, Option<String>)>,
    /// Signalled when the last task completes.
    finished: Condvar,
}

// SAFETY: `func` is only shared while the owning `run_indexed` frame is
// alive (see `Job` docs); the pointee is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// The persistent pool: a FIFO of open jobs and the worker handles.
struct Pool {
    queue: Mutex<Vec<Arc<Job>>>,
    wake: Condvar,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set while this thread is executing a pool task; nested parallel
    /// calls run inline instead of re-entering the pool.
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Number of threads the engine uses: `SKYNET_THREADS` when set and
/// positive, otherwise [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    pool().threads
}

fn configured_threads() -> usize {
    match std::env::var("SKYNET_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(Vec::new()),
        wake: Condvar::new(),
        threads: configured_threads(),
    })
}

/// Runs `f` with all parallel regions forced onto the calling thread, as
/// if the pool were configured with one thread.
///
/// Because the engine's decomposition and reduction order never depend on
/// the thread count, `serial(f)` must produce bit-identical results to
/// running `f` on the pool — the determinism tests assert exactly that.
pub fn serial<R>(f: impl FnOnce() -> R) -> R {
    IN_TASK.with(|t| {
        let prev = t.get();
        t.set(true);
        let out = f();
        t.set(prev);
        out
    })
}

/// Lazily spawns the worker threads the first time a job is published.
/// Workers are detached: they park on the queue condvar for the life of
/// the process.
fn ensure_workers(p: &'static Pool) {
    static SPAWNED: OnceLock<()> = OnceLock::new();
    SPAWNED.get_or_init(|| {
        // The caller participates in every job, so `threads - 1` workers
        // saturate the configured width.
        for i in 1..p.threads {
            std::thread::Builder::new()
                .name(format!("skynet-par-{i}"))
                .spawn(move || worker_loop(p, i))
                .expect("spawn pool worker");
        }
    });
}

fn worker_loop(p: &'static Pool, ordinal: usize) {
    // Scheduling metrics (`pool.*`) observe the nondeterministic part of
    // the engine: which thread ran how many tasks, and how long each
    // worker sat idle. They are intentionally excluded from the
    // determinism guarantee — see the telemetry module docs.
    let tasks_c = telemetry::counter(&format!("pool.thread.{ordinal}.tasks"));
    let idle_c = telemetry::counter(&format!("pool.thread.{ordinal}.idle_ns"));
    let mut guard = p.queue.lock().expect("pool queue");
    loop {
        if let Some(job) = guard.first().cloned() {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.total {
                // Exhausted: retire it if it is still at the front.
                if guard.first().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                    guard.remove(0);
                }
                continue;
            }
            drop(guard);
            run_task(&job, i);
            if telemetry::metrics_enabled() {
                tasks_c.inc();
            }
            guard = p.queue.lock().expect("pool queue");
        } else if telemetry::metrics_enabled() {
            let parked = std::time::Instant::now();
            guard = p.wake.wait(guard).expect("pool queue");
            idle_c.add(parked.elapsed().as_nanos() as u64);
        } else {
            guard = p.wake.wait(guard).expect("pool queue");
        }
    }
}

fn run_task(job: &Job, i: usize) {
    IN_TASK.with(|t| t.set(true));
    // SAFETY: the publishing `run_indexed` frame is blocked until `done`
    // reaches `total`, which happens strictly after this call returns.
    let func = unsafe { &*job.func };
    let outcome = catch_unwind(AssertUnwindSafe(|| func(i)));
    IN_TASK.with(|t| t.set(false));
    let all_done = job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.total;
    if let Err(payload) = outcome {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "task panicked".into());
        let mut finish = job.finish.lock().expect("finish latch");
        finish.1.get_or_insert(msg);
    }
    if all_done {
        let mut finish = job.finish.lock().expect("finish latch");
        finish.0 = true;
        job.finished.notify_all();
    }
}

/// Executes `f(0)`, `f(1)`, …, `f(tasks - 1)` across the pool and
/// returns when all have finished.
///
/// Each task must write only to state disjoint from every other task's
/// (the usual pattern is "task *i* owns chunk *i* of the output").
/// Because the decomposition is the caller's and no reduction happens
/// here, results are independent of thread count and scheduling.
///
/// Runs inline (plain serial loop) when the pool is single-threaded,
/// when called from inside another parallel task, or when `tasks < 2`.
///
/// # Panics
///
/// Re-raises (the first) panic from a task after all tasks finished.
pub fn run_indexed<F: Fn(usize) + Sync>(tasks: usize, f: F) {
    if tasks == 0 {
        return;
    }
    let p = pool();
    if p.threads <= 1 || tasks == 1 || IN_TASK.with(|t| t.get()) {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    ensure_workers(p);
    if telemetry::metrics_enabled() {
        telemetry::counter("pool.jobs").inc();
        telemetry::counter("pool.tasks").add(tasks as u64);
    }
    // SAFETY: pure lifetime erasure of a wide reference; the `Job` docs
    // explain why the borrow outlives every dereference.
    let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&f)
    };
    let job = Arc::new(Job {
        func: erased as *const _,
        next: AtomicUsize::new(0),
        total: tasks,
        done: AtomicUsize::new(0),
        finish: Mutex::new((false, None)),
        finished: Condvar::new(),
    });
    p.queue.lock().expect("pool queue").push(Arc::clone(&job));
    p.wake.notify_all();
    // The caller works the same queue until its job is exhausted…
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.total {
            break;
        }
        run_task(&job, i);
    }
    // …then waits for straggler tasks still running on workers.
    let mut finish = job.finish.lock().expect("finish latch");
    while !finish.0 {
        finish = job.finished.wait(finish).expect("finish latch");
    }
    if let Some(msg) = finish.1.take() {
        drop(finish);
        panic!("parallel task panicked: {msg}");
    }
}

/// Computes `n` values in parallel and returns them **in index order**,
/// so any subsequent reduction by the caller is deterministic.
pub fn par_iter_indexed<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let slots = SendPtr(out.as_mut_ptr());
        run_indexed(n, |i| {
            // SAFETY: task i is the only writer of slot i, and the slots
            // vector outlives `run_indexed`.
            unsafe { *slots.get().add(i) = Some(f(i)) };
        });
    }
    out.into_iter()
        .map(|v| v.expect("every task filled its slot"))
        .collect()
}

/// Runs `f(chunk_index, chunk)` over `data.chunks_mut(chunk)` in
/// parallel. The chunk decomposition depends only on `chunk`, never on
/// the thread count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], chunk: usize, f: F) {
    assert!(chunk > 0, "chunk length must be positive");
    let len = data.len();
    let tasks = len.div_ceil(chunk);
    let base = SendPtr(data.as_mut_ptr());
    run_indexed(tasks, |i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: chunk ranges [start, end) are pairwise disjoint across
        // tasks and in-bounds; `data` outlives `run_indexed`.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, slice);
    });
}

/// Runs `f(chunk_index, a_chunk, b_chunk)` over the paired chunk
/// decompositions of two buffers — the shape used by backward kernels
/// that produce a per-item gradient slice *and* a per-item partial
/// (weight, bias) accumulator in one pass.
///
/// # Panics
///
/// Panics if either chunk length is zero or the buffers imply different
/// task counts.
pub fn par_chunks_mut2<A: Send, B: Send, F>(
    a: &mut [A],
    chunk_a: usize,
    b: &mut [B],
    chunk_b: usize,
    f: F,
) where
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk lengths must be positive");
    let tasks = a.len().div_ceil(chunk_a);
    assert_eq!(
        tasks,
        b.len().div_ceil(chunk_b),
        "paired buffers must decompose into the same number of chunks"
    );
    let (len_a, len_b) = (a.len(), b.len());
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    run_indexed(tasks, |i| {
        let (sa, ea) = (i * chunk_a, ((i + 1) * chunk_a).min(len_a));
        let (sb, eb) = (i * chunk_b, ((i + 1) * chunk_b).min(len_b));
        // SAFETY: per-buffer chunk ranges are pairwise disjoint across
        // tasks and in-bounds; both buffers outlive `run_indexed`.
        let (ca, cb) = unsafe {
            (
                std::slice::from_raw_parts_mut(pa.get().add(sa), ea - sa),
                std::slice::from_raw_parts_mut(pb.get().add(sb), eb - sb),
            )
        };
        f(i, ca, cb);
    });
}

/// Raw pointer wrapper that may cross thread boundaries. Every use site
/// guarantees disjoint access ranges per task. Accessed through
/// [`SendPtr::get`] so closures capture the whole (Sync) wrapper rather
/// than the raw-pointer field (2021-edition disjoint capture).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn par_iter_preserves_index_order() {
        let v = par_iter_indexed(100, |i| i * i);
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut data = vec![0u32; 103]; // non-divisible tail chunk
        par_chunks_mut(&mut data, 10, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 10 + 1);
        }
    }

    #[test]
    fn par_chunks_mut2_pairs_chunks() {
        let mut a = vec![0usize; 12];
        let mut b = vec![0usize; 4];
        par_chunks_mut2(&mut a, 3, &mut b, 1, |i, ca, cb| {
            ca.fill(i);
            cb[0] = i * 10;
        });
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(b, vec![0, 10, 20, 30]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let total = AtomicU64::new(0);
        run_indexed(4, |_| {
            // Nested region: must not deadlock and must still cover all
            // indices.
            run_indexed(8, |j| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (1..=8).sum::<u64>());
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(8, |i| {
                if i == 5 {
                    panic!("boom {i}");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn float_sums_are_bit_identical_across_repeats() {
        // The canonical determinism pattern: parallel map, ordered fold.
        let run = || -> u32 {
            let parts = par_iter_indexed(64, |i| {
                let mut acc = 0.0f32;
                for j in 0..1000 {
                    acc += ((i * 1000 + j) as f32).sin() * 1e-3;
                }
                acc
            });
            parts.iter().fold(0.0f32, |a, &b| a + b).to_bits()
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
    }
}
