//! Process-wide observability: metrics, scoped-span tracing and reporters.
//!
//! The paper's contribution is *measured* hardware efficiency — every
//! Table 5 / Fig. 10 number comes from knowing where time goes. This
//! module is the software twin of that instrumentation: a registry of
//! [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s (all updated
//! lock-free through atomics) plus a scoped-span tracer whose
//! thread-local buffers drain into a single timeline that exports to the
//! Chrome `trace_event` format (open it in Perfetto / `chrome://tracing`).
//!
//! ## Cost model
//!
//! Telemetry is **disabled by default** and designed to be ~zero-cost in
//! that state: every entry point first checks one relaxed atomic load and
//! returns immediately when off. Enable it with the `SKYNET_METRICS` /
//! `SKYNET_TRACE` environment variables (`1`, `true`, `on`) or at runtime
//! through [`Builder`]:
//!
//! ```
//! use skynet_tensor::telemetry;
//!
//! telemetry::Builder::new().metrics(true).trace(true).apply();
//! {
//!     let _span = telemetry::span("example.work");
//!     telemetry::record_call("example.calls", 1);
//! }
//! let spans = telemetry::drain_spans();
//! assert_eq!(spans.len(), 1);
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("example.calls"), Some(1));
//! # telemetry::Builder::new().metrics(false).trace(false).apply();
//! # telemetry::reset_metrics();
//! ```
//!
//! ## Determinism
//!
//! Snapshots list metrics in sorted-name order, counters are integer
//! sums, and histograms accumulate their sum in fixed-point micro-units —
//! integer addition commutes, so metrics fed with deterministic *values*
//! (call counts, FLOPs, losses) produce **bit-identical snapshots for any
//! thread count**. Metrics that measure the scheduler itself (the
//! `pool.*` family: per-thread task counts, idle time) and wall-clock
//! histograms are intentionally outside that guarantee — they exist to
//! observe nondeterminism, not to hide it. Within one thread, spans are
//! recorded strictly in completion order (monotonic sequence numbers);
//! the drained timeline orders by start time for display only.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable/disable state
// ---------------------------------------------------------------------------

/// Tri-state flag: 0 = uninitialized (read env on first use), 1 = off,
/// 2 = on.
const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static METRICS_STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
static TRACE_STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

fn env_truthy(var: &str) -> bool {
    matches!(
        std::env::var(var).as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on") | Ok("yes")
    )
}

fn state_enabled(state: &AtomicU8, env: &str) -> bool {
    match state.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = env_truthy(env);
            state.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Whether metric recording is currently enabled (`SKYNET_METRICS` or
/// [`Builder::metrics`]). One relaxed atomic load on the hot path.
#[inline]
pub fn metrics_enabled() -> bool {
    state_enabled(&METRICS_STATE, "SKYNET_METRICS")
}

/// Whether span tracing is currently enabled (`SKYNET_TRACE` or
/// [`Builder::trace`]). One relaxed atomic load on the hot path.
#[inline]
pub fn trace_enabled() -> bool {
    state_enabled(&TRACE_STATE, "SKYNET_TRACE")
}

/// Runtime configuration of the telemetry subsystem; overrides the
/// environment variables in both directions.
///
/// ```
/// skynet_tensor::telemetry::Builder::new().metrics(true).apply();
/// # skynet_tensor::telemetry::Builder::new().metrics(false).apply();
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Builder {
    metrics: Option<bool>,
    trace: Option<bool>,
}

impl Builder {
    /// Starts a builder that changes nothing until [`Builder::apply`].
    pub fn new() -> Self {
        Builder::default()
    }

    /// Enables or disables metric recording.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = Some(on);
        self
    }

    /// Enables or disables span tracing.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// Applies the requested states. Fields not set keep their current
    /// (or environment-derived) value.
    pub fn apply(self) {
        if let Some(on) = self.metrics {
            METRICS_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
        }
        if let Some(on) = self.trace {
            TRACE_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonically increasing integer metric (calls, FLOPs, frames).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating-point metric (loss, learning rate, queue
/// depth).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (compare-and-swap loop; used for depth
    /// tracking where concurrent writers exist).
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Fixed-bucket histogram: `bounds.len() + 1` buckets where bucket *i*
/// counts values `<= bounds[i]` (the last bucket is the overflow).
///
/// The sum is accumulated in fixed-point micro-units (`round(v · 1e6)`),
/// so concurrent recording of deterministic values yields a
/// bit-deterministic snapshot — integer addition commutes where float
/// addition does not.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micro: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Records a value.
    #[inline]
    pub fn record(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = (v.max(0.0) * 1e6).round() as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (micro-unit resolution).
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micro.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<std::collections::BTreeMap<String, Metric>> {
    static REG: OnceLock<Mutex<std::collections::BTreeMap<String, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()))
}

/// Returns (registering on first use) the counter with this name.
///
/// Registration takes a mutex; updates on the returned handle are
/// lock-free. Hot call sites should cache the reference.
///
/// # Panics
///
/// Panics if the name is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("telemetry registry");
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::default()))))
    {
        Metric::Counter(c) => c,
        other => panic!("metric `{name}` already registered as a {}", other.kind()),
    }
}

/// Returns (registering on first use) the gauge with this name.
///
/// # Panics
///
/// Panics if the name is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().expect("telemetry registry");
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::default()))))
    {
        Metric::Gauge(g) => g,
        other => panic!("metric `{name}` already registered as a {}", other.kind()),
    }
}

/// Returns (registering on first use) the fixed-bucket histogram with
/// this name. The bounds are fixed at first registration; later callers
/// get the existing histogram regardless of the bounds they pass.
///
/// # Panics
///
/// Panics if the name is already registered as a different metric kind,
/// or if `bounds` is not strictly increasing.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry().lock().expect("telemetry registry");
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
    {
        Metric::Histogram(h) => h,
        other => panic!("metric `{name}` already registered as a {}", other.kind()),
    }
}

/// Convenience: `counter(name).add(n)` guarded by [`metrics_enabled`] —
/// the pattern kernels use so the disabled path is one atomic load.
#[inline]
pub fn record_call(name: &str, n: u64) {
    if metrics_enabled() {
        counter(name).add(n);
    }
}

/// Convenience: `gauge(name).set(v)` guarded by [`metrics_enabled`].
#[inline]
pub fn record_gauge(name: &str, v: f64) {
    if metrics_enabled() {
        gauge(name).set(v);
    }
}

/// Default latency-histogram bucket bounds, in milliseconds.
pub const MS_BOUNDS: [f64; 12] = [
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
];

/// Zeroes every registered metric (the names stay registered). Used by
/// profilers and tests that compare before/after windows.
pub fn reset_metrics() {
    let reg = registry().lock().expect("telemetry registry");
    for metric in reg.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots & reporters
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Upper bucket bounds (the final overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (micro-unit resolution).
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) from the fixed buckets by
    /// linear interpolation inside the bucket holding the target rank.
    /// The first bucket interpolates from 0; ranks landing in the
    /// overflow bucket are clamped to the last bound (the histogram does
    /// not know how far past it the values went). Returns `None` when
    /// nothing has been recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let last_bound = *self.bounds.last()?;
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if c > 0 && cum as f64 >= target {
                if i >= self.bounds.len() {
                    return Some(last_bound);
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = ((target - prev as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        Some(last_bound)
    }
}

/// Deterministically ordered copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs in ascending name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms in ascending name order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Keeps only metrics whose name passes the filter — e.g. drop the
    /// scheduling-dependent `pool.*` family before a determinism
    /// comparison.
    pub fn retain(mut self, keep: impl Fn(&str) -> bool) -> Self {
        self.counters.retain(|(n, _)| keep(n));
        self.gauges.retain(|(n, _)| keep(n));
        self.histograms.retain(|h| keep(&h.name));
        self
    }
}

/// Captures every registered metric. Iteration follows the registry's
/// BTreeMap, so the order is the sorted name order — deterministic
/// regardless of registration or scheduling order.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("telemetry registry");
    let mut snap = Snapshot::default();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push((name.clone(), c.value())),
            Metric::Gauge(g) => snap.gauges.push((name.clone(), g.value())),
            Metric::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                name: name.clone(),
                bounds: h.bounds.clone(),
                counts: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count(),
                sum: h.sum(),
            }),
        }
    }
    snap
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Inf; report as null.
        "null".to_string()
    }
}

/// Machine-readable JSON rendering of [`snapshot`]:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}` with keys in
/// deterministic (sorted) order.
pub fn snapshot_json() -> String {
    let snap = snapshot();
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(name), json_f64(*v)));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
        let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
        let quant = |q: f64| h.quantile(q).map(json_f64).unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(&h.name),
            bounds.join(","),
            counts.join(","),
            h.count,
            json_f64(h.sum),
            quant(0.50),
            quant(0.95),
            quant(0.99),
        ));
    }
    out.push_str("}}");
    out
}

/// Human-readable fixed-width table of every registered metric.
pub fn render_table() -> String {
    let snap = snapshot();
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters\n");
        let w = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<w$}  {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges\n");
        let w = snap.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<w$}  {v:.6}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms\n");
        for h in &snap.histograms {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            match (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)) {
                (Some(p50), Some(p95), Some(p99)) => out.push_str(&format!(
                    "  {}  count={} sum={:.3} mean={:.4} p50={p50:.4} p95={p95:.4} p99={p99:.4}\n",
                    h.name, h.count, h.sum, mean
                )),
                _ => out.push_str(&format!(
                    "  {}  count={} sum={:.3} mean={:.4}\n",
                    h.name, h.count, h.sum, mean
                )),
            }
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let label = if i < h.bounds.len() {
                    format!("<= {}", h.bounds[i])
                } else {
                    "overflow".to_string()
                };
                out.push_str(&format!("    {label:<12} {c}\n"));
            }
        }
    }
    if crate::alloc::enabled() {
        let a = crate::alloc::stats();
        out.push_str("allocator (SKYNET_ALLOC_STATS)\n");
        out.push_str(&format!(
            "  alloc_calls    {}\n  alloc_bytes    {}\n  dealloc_calls  {}\n  dealloc_bytes  {}\n",
            a.alloc_calls, a.alloc_bytes, a.dealloc_calls, a.dealloc_bytes
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Scoped-span tracer
// ---------------------------------------------------------------------------

/// One completed span on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static: span creation must not allocate).
    pub name: &'static str,
    /// Ordinal of the recording thread (assigned at that thread's first
    /// span, in registration order).
    pub thread: u32,
    /// Per-thread completion sequence number, strictly increasing.
    pub seq: u64,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End offset from the trace epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct ThreadBuf {
    thread: u32,
    seq: u64,
    spans: std::collections::VecDeque<SpanRecord>,
}

/// Per-thread span-buffer capacity: `SKYNET_TRACE_CAP` (default 65 536
/// spans ≈ 2.5 MiB/thread). When a buffer is full the **oldest** span is
/// dropped and `telemetry.spans.dropped` incremented — a long-running
/// process keeps the most recent window instead of growing unboundedly.
fn trace_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SKYNET_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(65_536)
    })
}

/// Cached handle for the drop counter so the span hot path never takes
/// the registry lock after the first drop.
fn dropped_counter() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| counter("telemetry.spans.dropped"))
}

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn trace_bufs() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_BUF: std::cell::OnceCell<Arc<Mutex<ThreadBuf>>> =
        const { std::cell::OnceCell::new() };
}

fn with_local_buf(f: impl FnOnce(&mut ThreadBuf)) {
    LOCAL_BUF.with(|cell| {
        let arc = cell.get_or_init(|| {
            let mut all = trace_bufs().lock().expect("trace buffers");
            let buf = Arc::new(Mutex::new(ThreadBuf {
                thread: all.len() as u32,
                seq: 0,
                spans: std::collections::VecDeque::new(),
            }));
            all.push(Arc::clone(&buf));
            buf
        });
        // Uncontended except while a drain holds the buffer briefly.
        f(&mut arc.lock().expect("thread trace buffer"));
    });
}

/// RAII guard produced by [`span`]: records a [`SpanRecord`] on drop.
/// Inert (no clock read, no allocation) when tracing is disabled.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(&'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            let epoch = trace_epoch();
            let start_ns = start.duration_since(epoch).as_nanos() as u64;
            let dur_ns = start.elapsed().as_nanos() as u64;
            with_local_buf(|buf| {
                let seq = buf.seq;
                buf.seq += 1;
                let thread = buf.thread;
                if buf.spans.len() >= trace_cap() {
                    buf.spans.pop_front();
                    dropped_counter().inc();
                }
                buf.spans.push_back(SpanRecord {
                    name,
                    thread,
                    seq,
                    start_ns,
                    dur_ns,
                });
            });
        }
    }
}

/// Opens a scoped span bound to the enclosing scope:
/// `let _s = span!("conv_fwd");`. Expands to [`telemetry::span`](span).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::span($name)
    };
}

/// Opens a scoped span: the returned guard records the elapsed interval
/// into this thread's trace buffer when it goes out of scope. When
/// tracing is disabled the guard is inert and the call costs one relaxed
/// atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if trace_enabled() {
        // Pin the epoch before the first span so offsets are in range.
        trace_epoch();
        SpanGuard {
            live: Some((name, Instant::now())),
        }
    } else {
        SpanGuard { live: None }
    }
}

/// Drains every thread's span buffer into a single timeline ordered by
/// `(start_ns, thread, seq)`. Within a thread the records preserve
/// completion order via their `seq` field (asserted by the determinism
/// tests); the global sort is for display.
pub fn drain_spans() -> Vec<SpanRecord> {
    let all = trace_bufs().lock().expect("trace buffers");
    let mut out = Vec::new();
    for buf in all.iter() {
        let mut buf = buf.lock().expect("thread trace buffer");
        out.extend(buf.spans.drain(..));
    }
    drop(all);
    out.sort_by_key(|s| (s.start_ns, s.thread, s.seq));
    out
}

/// Renders spans in the Chrome `trace_event` JSON format — load the
/// output in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
/// Each span becomes a complete (`"ph":"X"`) event with microsecond
/// timestamps; threads map to `tid`s.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            json_escape(s.name),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.thread,
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Per-op profile aggregation
// ---------------------------------------------------------------------------

/// Aggregated statistics for one span name, produced by [`aggregate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStat {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub calls: u64,
    /// Total (inclusive) time, nanoseconds.
    pub total_ns: u64,
    /// Self time: total minus time spent in spans nested inside these
    /// spans on the same thread, nanoseconds. Self times of all ops sum
    /// to the union of traced intervals, so they partition wall time.
    pub self_ns: u64,
}

/// Folds a drained timeline into per-op totals with *self time* (time
/// not attributable to a nested span — e.g. `conv_fwd` minus the
/// `matmul` it calls). Nesting is reconstructed per thread from the
/// interval structure, which is exact for scoped guards. Results are
/// sorted by descending self time.
pub fn aggregate(spans: &[SpanRecord]) -> Vec<OpStat> {
    use std::collections::HashMap;
    // Per-thread, sorted so parents come before their children.
    let mut by_thread: HashMap<u32, Vec<&SpanRecord>> = HashMap::new();
    for s in spans {
        by_thread.entry(s.thread).or_default().push(s);
    }
    let mut stats: HashMap<&'static str, OpStat> = HashMap::new();
    for list in by_thread.values_mut() {
        list.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns().cmp(&a.end_ns()))
        });
        // Stack of open intervals; child durations are subtracted from
        // the innermost enclosing span's self time.
        let mut stack: Vec<(&'static str, u64)> = Vec::new(); // (name, end_ns)
        let mut self_sub: HashMap<usize, u64> = HashMap::new(); // stack depth -> nested ns
        for s in list.iter() {
            while let Some(&(_, end)) = stack.last() {
                if end <= s.start_ns {
                    pop_frame(&mut stack, &mut self_sub, &mut stats);
                } else {
                    break;
                }
            }
            let entry = stats.entry(s.name).or_insert(OpStat {
                name: s.name,
                calls: 0,
                total_ns: 0,
                self_ns: 0,
            });
            entry.calls += 1;
            entry.total_ns += s.dur_ns;
            entry.self_ns += s.dur_ns;
            if !stack.is_empty() {
                *self_sub.entry(stack.len() - 1).or_insert(0) += s.dur_ns;
            }
            stack.push((s.name, s.end_ns()));
        }
        while !stack.is_empty() {
            pop_frame(&mut stack, &mut self_sub, &mut stats);
        }
    }
    let mut out: Vec<OpStat> = stats.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    out
}

fn pop_frame(
    stack: &mut Vec<(&'static str, u64)>,
    self_sub: &mut std::collections::HashMap<usize, u64>,
    stats: &mut std::collections::HashMap<&'static str, OpStat>,
) {
    let depth = stack.len() - 1;
    let (name, _) = stack.pop().expect("non-empty stack");
    if let Some(nested) = self_sub.remove(&depth) {
        if let Some(stat) = stats.get_mut(name) {
            stat.self_ns = stat.self_ns.saturating_sub(nested);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flags are process-global, so tests that toggle them
    /// must not interleave.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = test_lock();
        Builder::new().metrics(true).trace(true).apply();
        let out = f();
        Builder::new().metrics(false).trace(false).apply();
        out
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        with_telemetry(|| {
            reset_metrics();
            counter("test.z").add(3);
            counter("test.a").add(2);
            counter("test.a").inc();
            let snap = snapshot().retain(|n| n.starts_with("test."));
            assert_eq!(
                snap.counters,
                vec![("test.a".to_string(), 3), ("test.z".to_string(), 3)]
            );
        });
    }

    #[test]
    fn gauge_set_and_add() {
        with_telemetry(|| {
            let g = gauge("test.gauge");
            g.set(1.5);
            g.add(2.25);
            assert_eq!(g.value(), 3.75);
        });
    }

    #[test]
    fn histogram_buckets_and_fixed_point_sum() {
        with_telemetry(|| {
            let h = histogram("test.hist.ms", &[1.0, 10.0]);
            h.reset();
            h.record(0.5);
            h.record(5.0);
            h.record(50.0);
            let snap = snapshot();
            let hs = snap
                .histograms
                .iter()
                .find(|h| h.name == "test.hist.ms")
                .unwrap();
            assert_eq!(hs.counts, vec![1, 1, 1]);
            assert_eq!(hs.count, 3);
            assert!((hs.sum - 55.5).abs() < 1e-6);
        });
    }

    #[test]
    fn spans_record_and_nest() {
        with_telemetry(|| {
            drain_spans();
            {
                let _outer = span("test.outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span("test.inner");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            let spans = drain_spans();
            let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
            let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
            assert!(outer.start_ns <= inner.start_ns);
            assert!(outer.end_ns() >= inner.end_ns());

            let stats = aggregate(&[outer.clone(), inner.clone()]);
            let o = stats.iter().find(|s| s.name == "test.outer").unwrap();
            let i = stats.iter().find(|s| s.name == "test.inner").unwrap();
            assert_eq!(o.calls, 1);
            // Outer self time excludes the inner span.
            assert_eq!(o.self_ns, outer.dur_ns - inner.dur_ns);
            assert_eq!(i.self_ns, inner.dur_ns);
        });
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let _guard = test_lock();
        Builder::new().metrics(false).trace(false).apply();
        drain_spans();
        {
            let _s = span("test.disabled");
        }
        record_call("test.disabled.calls", 7);
        assert!(drain_spans().is_empty());
        assert_eq!(snapshot().counter("test.disabled.calls"), None);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let spans = vec![
            SpanRecord {
                name: "a",
                thread: 0,
                seq: 0,
                start_ns: 1_000,
                dur_ns: 2_000,
            },
            SpanRecord {
                name: "b",
                thread: 1,
                seq: 0,
                start_ns: 1_500,
                dur_ns: 500,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        with_telemetry(|| {
            counter("test.json.calls").inc();
            gauge("test.json.gauge").set(2.5);
            let json = snapshot_json();
            assert!(json.starts_with("{\"counters\":{"));
            assert!(json.contains("\"test.json.calls\":"));
            assert!(json.contains("\"test.json.gauge\":2.5"));
            assert_eq!(json.matches('{').count(), json.matches('}').count());
        });
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let hs = HistogramSnapshot {
            name: "test.q".into(),
            bounds: vec![1.0, 2.0, 4.0],
            // 10 values <= 1, 10 in (1, 2], none in (2, 4], 5 overflow.
            counts: vec![10, 10, 0, 5],
            count: 25,
            sum: 0.0,
        };
        // Rank 12.5 lands 2.5/10 into the (1, 2] bucket.
        let p50 = hs.quantile(0.5).unwrap();
        assert!((p50 - 1.25).abs() < 1e-9, "p50 = {p50}");
        // Ranks past the last bound clamp to it.
        assert_eq!(hs.quantile(0.99), Some(4.0));
        // First-bucket ranks interpolate from zero.
        let p20 = hs.quantile(0.2).unwrap();
        assert!((p20 - 0.5).abs() < 1e-9, "p20 = {p20}");
        // Empty histogram has no quantiles.
        let empty = HistogramSnapshot {
            name: "test.q0".into(),
            bounds: vec![1.0],
            counts: vec![0, 0],
            count: 0,
            sum: 0.0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn json_and_table_surface_percentiles() {
        with_telemetry(|| {
            let h = histogram("test.pctl.ms", &[1.0, 10.0]);
            h.reset();
            h.record(0.5);
            h.record(5.0);
            assert!(snapshot_json().contains("\"p95\":"));
            assert!(render_table().contains("p95="));
        });
    }

    #[test]
    fn span_buffer_drops_oldest_at_cap() {
        // The cap is process-wide (OnceLock) so this test exercises the
        // drop path on a dedicated thread with a pre-filled buffer
        // instead of overriding the env: record `cap + extra` spans and
        // check the retention window.
        with_telemetry(|| {
            drain_spans();
            let before = snapshot().counter("telemetry.spans.dropped").unwrap_or(0);
            let cap = trace_cap();
            let extra = 16;
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..cap + extra {
                        let _s = span("test.capped");
                    }
                });
            });
            let spans = drain_spans();
            let mine: Vec<_> = spans.iter().filter(|s| s.name == "test.capped").collect();
            assert_eq!(mine.len(), cap, "buffer must hold exactly the cap");
            // The survivors are the newest: seq values are the tail.
            let min_seq = mine.iter().map(|s| s.seq).min().unwrap();
            assert_eq!(min_seq, extra as u64, "oldest spans must be dropped");
            let after = snapshot().counter("telemetry.spans.dropped").unwrap_or(0);
            assert_eq!(after - before, extra as u64);
        });
    }
}
