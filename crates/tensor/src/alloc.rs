//! Global-allocator tap: process-wide allocation counters behind
//! `SKYNET_ALLOC_STATS`.
//!
//! The [`scratch`](crate::scratch) arena proves *its* call sites stopped
//! allocating, but only the allocator itself can prove nothing else
//! snuck onto the hot path. This module installs a [`GlobalAlloc`]
//! wrapper around [`System`] that counts calls and bytes when enabled.
//!
//! ## Cost and safety model
//!
//! The tap is a three-state atomic: until [`enabled`] (or [`enable`]) is
//! called from ordinary code, the state is *unset* and every allocator
//! hook is a single relaxed load plus the `System` call. The environment
//! variable is deliberately **not** read inside the allocator — reading
//! it allocates, which would recurse. Callers that want the tap (the
//! `profile` bench bin, [`telemetry::render_table`](crate::telemetry::render_table))
//! query [`enabled`] from normal code, which performs the one-time env
//! read and arms the counters.
//!
//! Counter updates are relaxed `fetch_add`s — totals are exact, ordering
//! between threads is not observed. Allocation counts are inherently
//! scheduling-dependent and are excluded from the telemetry determinism
//! guarantee, like the `pool.*` and `scratch.*` families.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] plus relaxed-atomic call/byte counters, armed by
/// [`enable`]. Installed as the workspace's `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

#[inline]
fn armed() -> bool {
    STATE.load(Ordering::Relaxed) == STATE_ON
}

// SAFETY: defers entirely to `System`; the counter updates never
// allocate (plain atomics) so the hooks cannot recurse.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if armed() {
            DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            DEALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            DEALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the tap is armed. The first call reads `SKYNET_ALLOC_STATS`
/// (`1`, `true`, `on`, `yes`); subsequent calls are one relaxed load.
/// Must be called from ordinary code, never from inside an allocator
/// hook (the env read allocates).
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = matches!(
                std::env::var("SKYNET_ALLOC_STATS")
                    .as_deref()
                    .map(str::trim),
                Ok("1") | Ok("true") | Ok("on") | Ok("yes")
            );
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Arms or disarms the tap at runtime, overriding the environment.
pub fn enable(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Point-in-time copy of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocation calls (`alloc`, `alloc_zeroed`, and the alloc half of
    /// `realloc`) observed while armed.
    pub alloc_calls: u64,
    /// Bytes requested by those calls.
    pub alloc_bytes: u64,
    /// Deallocation calls observed while armed.
    pub dealloc_calls: u64,
    /// Bytes released by those calls.
    pub dealloc_bytes: u64,
}

impl AllocStats {
    /// Counter deltas `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            alloc_calls: self.alloc_calls.saturating_sub(earlier.alloc_calls),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            dealloc_calls: self.dealloc_calls.saturating_sub(earlier.dealloc_calls),
            dealloc_bytes: self.dealloc_bytes.saturating_sub(earlier.dealloc_bytes),
        }
    }
}

/// Reads the current counters (zeros until the tap is armed).
pub fn stats() -> AllocStats {
    AllocStats {
        alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        dealloc_calls: DEALLOC_CALLS.load(Ordering::Relaxed),
        dealloc_bytes: DEALLOC_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_tap_observes_an_allocation() {
        // Tests share the process: arm, measure a delta, restore.
        let was_on = enabled();
        enable(true);
        let before = stats();
        let v = std::hint::black_box(vec![0u8; 4096]);
        let after = stats();
        drop(v);
        enable(was_on);
        let delta = after.since(&before);
        assert!(delta.alloc_calls >= 1, "allocation not counted");
        assert!(delta.alloc_bytes >= 4096, "bytes not counted");
    }

    #[test]
    fn since_saturates() {
        let a = AllocStats {
            alloc_calls: 1,
            ..Default::default()
        };
        let b = AllocStats {
            alloc_calls: 5,
            ..Default::default()
        };
        assert_eq!(a.since(&b).alloc_calls, 0);
    }
}
