//! Depth-wise 2-D convolution — the `DW-Conv3` half of the SkyNet Bundle.
//!
//! Each channel is convolved with its own `k×k` filter (channel multiplier
//! 1, as in MobileNet and SkyNet). The kernels are direct loops rather than
//! im2col: with one filter per channel there is no matrix structure to
//! exploit, and direct loops match the line-buffer dataflow of the paper's
//! DW-Conv FPGA IP.

use crate::conv::{check_geometry, ConvGeometry};
use crate::parallel::{par_chunks_mut, par_chunks_mut2};
use crate::telemetry;
use crate::{Result, Shape, Tensor, TensorError};

fn check(input: Shape, weight: Shape, geo: ConvGeometry) -> Result<()> {
    if weight.n != input.c || weight.c != 1 || weight.h != geo.kernel || weight.w != geo.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "dwconv2d",
            expected: format!("weight [{}, 1, {}, {}]", input.c, geo.kernel, geo.kernel),
            got: weight.to_string(),
        });
    }
    check_geometry(input, geo, "dwconv2d")
}

/// Depth-wise convolution.
///
/// `weight` has shape `[c, 1, k, k]`; `bias`, when given, has `c` entries.
///
/// # Errors
///
/// Returns a [`TensorError`] when the weight shape disagrees with the input
/// channel count or geometry, or when the bias length is wrong.
pub fn dwconv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
) -> Result<Tensor> {
    let is = input.shape();
    check(is, weight.shape(), geo)?;
    if let Some(b) = bias {
        if b.len() != is.c {
            return Err(TensorError::ShapeMismatch {
                op: "dwconv2d bias",
                expected: format!("{} entries", is.c),
                got: format!("{} entries", b.len()),
            });
        }
    }
    let os = geo.out_shape(is, is.c);
    let mut out = Tensor::zeros(os);
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let kk = k * k;
    let _span = telemetry::span("tensor.dwconv_fwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.dwconv.fwd_calls").inc();
        telemetry::counter("tensor.dwconv.fwd_flops").add(2 * (os.numel() * kk) as u64);
    }
    // Every (item, channel) plane is independent: one parallel task per
    // output plane, each reading only its own input plane and filter.
    par_chunks_mut(out.as_mut_slice(), os.plane(), |plane, chan_out| {
        let c = plane % is.c;
        let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
        let bv = bias.map(|b| b[c]).unwrap_or(0.0);
        let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
        for oy in 0..os.h {
            let iy0 = (oy * s) as isize - p as isize;
            for ox in 0..os.w {
                let ix0 = (ox * s) as isize - p as isize;
                let mut acc = bv;
                for ky in 0..k {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= is.h as isize {
                        continue;
                    }
                    let row = iy as usize * is.w;
                    let frow = ky * k;
                    for kx in 0..k {
                        let ix = ix0 + kx as isize;
                        if ix >= 0 && ix < is.w as isize {
                            acc += chan_in[row + ix as usize] * filt[frow + kx];
                        }
                    }
                }
                chan_out[oy * os.w + ox] = acc;
            }
        }
    });
    Ok(out)
}

/// Gradients produced by [`dwconv2d_backward`].
#[derive(Debug, Clone)]
pub struct DwConvGrads {
    /// Gradient w.r.t. the input feature map.
    pub input: Tensor,
    /// Gradient w.r.t. the `[c, 1, k, k]` weight tensor.
    pub weight: Tensor,
    /// Gradient w.r.t. the per-channel bias.
    pub bias: Vec<f32>,
}

/// Backward pass of [`dwconv2d`].
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_out`'s shape disagrees with the
/// forward geometry.
pub fn dwconv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geo: ConvGeometry,
) -> Result<DwConvGrads> {
    let is = input.shape();
    check(is, weight.shape(), geo)?;
    let os = geo.out_shape(is, is.c);
    if grad_out.shape() != os {
        return Err(TensorError::ShapeMismatch {
            op: "dwconv2d_backward",
            expected: os.to_string(),
            got: grad_out.shape().to_string(),
        });
    }
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let kk = k * k;
    let mut gi = Tensor::zeros(is);
    let mut gw = Tensor::zeros(weight.shape());
    let mut gb = vec![0.0f32; is.c];
    let _span = telemetry::span("tensor.dwconv_bwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.dwconv.bwd_calls").inc();
        telemetry::counter("tensor.dwconv.bwd_flops").add(4 * (os.numel() * kk) as u64);
    }
    // One task per (item, channel) plane: the input-gradient plane is
    // written in place and the filter/bias contribution goes to a private
    // `[grad_w | grad_b]` stripe, folded afterwards in ascending item
    // order per channel — the same order the serial loop accumulated in.
    let stripe = kk + 1;
    let mut partials = vec![0.0f32; is.n * is.c * stripe];
    par_chunks_mut2(
        gi.as_mut_slice(),
        is.plane(),
        &mut partials,
        stripe,
        |plane, gi_c, partial| {
            let c = plane % is.c;
            let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
            let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
            let go = &grad_out.as_slice()[plane * os.plane()..(plane + 1) * os.plane()];
            let (gw_c, gb_c) = partial.split_at_mut(kk);
            for oy in 0..os.h {
                let iy0 = (oy * s) as isize - p as isize;
                for ox in 0..os.w {
                    let ix0 = (ox * s) as isize - p as isize;
                    let g = go[oy * os.w + ox];
                    if g == 0.0 {
                        continue;
                    }
                    gb_c[0] += g;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= is.h as isize {
                            continue;
                        }
                        let row = iy as usize * is.w;
                        let frow = ky * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < is.w as isize {
                                let ii = row + ix as usize;
                                gw_c[frow + kx] += g * chan_in[ii];
                                gi_c[ii] += g * filt[frow + kx];
                            }
                        }
                    }
                }
            }
        },
    );
    for n in 0..is.n {
        for c in 0..is.c {
            let partial = &partials[(n * is.c + c) * stripe..(n * is.c + c + 1) * stripe];
            for (g, &pv) in gw.as_mut_slice()[c * kk..(c + 1) * kk]
                .iter_mut()
                .zip(partial)
            {
                *g += pv;
            }
            gb[c] += partial[kk];
        }
    }
    Ok(DwConvGrads {
        input: gi,
        weight: gw,
        bias: gb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, conv2d_backward};

    fn filled(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        Tensor::from_vec(shape, (0..shape.numel()).map(f).collect()).unwrap()
    }

    /// A depth-wise conv equals a dense conv whose weight is block-diagonal
    /// across channels. We use that identity as the reference.
    fn as_dense_weight(dw: &Tensor, c: usize, k: usize) -> Tensor {
        let mut dense = Tensor::zeros(Shape::new(c, c, k, k));
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    *dense.at_mut(ch, ch, ky, kx) = dw.at(ch, 0, ky, kx);
                }
            }
        }
        dense
    }

    #[test]
    fn forward_matches_dense_blockdiag() {
        let geo = ConvGeometry::same3x3();
        let c = 4;
        let x = filled(Shape::new(2, c, 5, 6), |i| ((i % 10) as f32 - 4.5) * 0.1);
        let w = filled(Shape::new(c, 1, 3, 3), |i| ((i % 7) as f32 - 3.0) * 0.2);
        let b: Vec<f32> = (0..c).map(|i| i as f32 * 0.1).collect();
        let got = dwconv2d(&x, &w, Some(&b), geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d(&x, &dense, Some(&b), geo).unwrap();
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn strided_forward_matches_dense() {
        let geo = ConvGeometry::new(3, 2, 1);
        let c = 3;
        let x = filled(Shape::new(1, c, 7, 8), |i| (i as f32 * 0.37).sin());
        let w = filled(Shape::new(c, 1, 3, 3), |i| (i as f32 * 0.11).cos());
        let got = dwconv2d(&x, &w, None, geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d(&x, &dense, None, geo).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_matches_dense_blockdiag() {
        let geo = ConvGeometry::same3x3();
        let c = 3;
        let x = filled(Shape::new(1, c, 4, 5), |i| ((i % 8) as f32 - 3.5) * 0.15);
        let w = filled(Shape::new(c, 1, 3, 3), |i| ((i % 5) as f32 - 2.0) * 0.1);
        let out = dwconv2d(&x, &w, None, geo).unwrap();
        let go = filled(out.shape(), |i| ((i % 4) as f32 - 1.5) * 0.2);

        let got = dwconv2d_backward(&x, &w, &go, geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d_backward(&x, &dense, &go, geo).unwrap();

        for (a, e) in got.input.as_slice().iter().zip(want.input.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
        // Dense weight grad on the diagonal blocks must equal the dw grad.
        for ch in 0..c {
            for ky in 0..3 {
                for kx in 0..3 {
                    let a = got.weight.at(ch, 0, ky, kx);
                    let e = want.weight.at(ch, ch, ky, kx);
                    assert!((a - e).abs() < 1e-4);
                }
            }
        }
        for (a, e) in got.bias.iter().zip(&want.bias) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_weight() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(4, 1, 3, 3));
        assert!(dwconv2d(&x, &w, None, ConvGeometry::same3x3()).is_err());
    }
}
