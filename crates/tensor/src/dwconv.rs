//! Depth-wise 2-D convolution — the `DW-Conv3` half of the SkyNet Bundle.
//!
//! Each channel is convolved with its own `k×k` filter (channel multiplier
//! 1, as in MobileNet and SkyNet). The kernels are direct loops rather than
//! im2col: with one filter per channel there is no matrix structure to
//! exploit, and direct loops match the line-buffer dataflow of the paper's
//! DW-Conv FPGA IP.
//!
//! ## Interior/border split
//!
//! The profiler showed the original per-pixel bounds-checked loop eating
//! two thirds of forward wall time, almost all of it on taps that can
//! never fall outside the input. Each output plane is therefore split
//! into a **branch-free interior** — every tap in bounds by
//! construction, with the `k = 3` case fully unrolled for strides 1 and
//! 2 (the only geometries SkyNet instantiates) — and a thin **border**
//! handled by the original generic code.
//!
//! The split is *per row*, never a separate interior pass: the backward
//! kernel scatter-accumulates into shared gradient buffers, so output
//! pixels must be visited in the same raster order as the
//! [`reference`] kernels, and within each pixel the taps in the same
//! `(ky, kx)` order, for the results to stay **bit-identical** (f32
//! addition does not commute). The `kernel_equivalence` proptests assert
//! that equivalence over random shapes, strides and pads, pooled and
//! forced-serial.

use crate::conv::{check_geometry, ConvGeometry};
use crate::parallel::{par_chunks_mut, par_chunks_mut2};
use crate::{scratch, telemetry};
use crate::{Result, Shape, Tensor, TensorError};

fn check(input: Shape, weight: Shape, geo: ConvGeometry) -> Result<()> {
    if weight.n != input.c || weight.c != 1 || weight.h != geo.kernel || weight.w != geo.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "dwconv2d",
            expected: format!("weight [{}, 1, {}, {}]", input.c, geo.kernel, geo.kernel),
            got: weight.to_string(),
        });
    }
    check_geometry(input, geo, "dwconv2d")
}

/// Output positions along one axis whose receptive field lies fully
/// inside the input: the half-open interior range `lo..hi` (possibly
/// empty). Positions outside it need per-tap bounds checks.
fn interior_range(out: usize, inp: usize, k: usize, s: usize, p: usize) -> (usize, usize) {
    if inp + p < k || k == 0 || s == 0 {
        return (0, 0);
    }
    let lo = p.div_ceil(s).min(out);
    let hi = ((inp + p - k) / s + 1).min(out);
    (lo.min(hi), hi)
}

/// One interior output row of a fully unrolled 3×3 depth-wise filter.
/// `r0..r2` are the three input rows, already offset so output `j` reads
/// columns `j*S .. j*S+2`. The nine taps accumulate in `(ky, kx)` order —
/// the exact f32 addition sequence of the reference kernel.
#[inline]
fn dw3_fwd_row<const S: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    f: &[f32],
    bv: f32,
) {
    let (f00, f01, f02) = (f[0], f[1], f[2]);
    let (f10, f11, f12) = (f[3], f[4], f[5]);
    let (f20, f21, f22) = (f[6], f[7], f[8]);
    for (j, o) in out.iter_mut().enumerate() {
        let x = j * S;
        *o = bv
            + r0[x] * f00
            + r0[x + 1] * f01
            + r0[x + 2] * f02
            + r1[x] * f10
            + r1[x + 1] * f11
            + r1[x + 2] * f12
            + r2[x] * f20
            + r2[x + 1] * f21
            + r2[x + 2] * f22;
    }
}

/// Border path: the original generic per-pixel loop over an `ox` range.
#[allow(clippy::too_many_arguments)]
#[inline]
fn dw_fwd_border(
    out_row: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    oy: usize,
    ox_range: std::ops::Range<usize>,
    is: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let iy0 = (oy * s) as isize - p as isize;
    for ox in ox_range {
        let ix0 = (ox * s) as isize - p as isize;
        let mut acc = bv;
        for ky in 0..k {
            let iy = iy0 + ky as isize;
            if iy < 0 || iy >= is.h as isize {
                continue;
            }
            let row = iy as usize * is.w;
            let frow = ky * k;
            for kx in 0..k {
                let ix = ix0 + kx as isize;
                if ix >= 0 && ix < is.w as isize {
                    acc += chan_in[row + ix as usize] * filt[frow + kx];
                }
            }
        }
        out_row[ox] = acc;
    }
}

/// Forward pass over one `(item, channel)` plane with the
/// interior/border split.
#[allow(clippy::too_many_arguments)]
fn dw_plane_fwd(
    chan_out: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let (y_lo, y_hi) = interior_range(os.h, is.h, k, s, p);
    let (x_lo, x_hi) = interior_range(os.w, is.w, k, s, p);
    for oy in 0..os.h {
        let out_row = &mut chan_out[oy * os.w..(oy + 1) * os.w];
        if oy < y_lo || oy >= y_hi || x_lo >= x_hi {
            dw_fwd_border(out_row, chan_in, filt, bv, oy, 0..os.w, is, k, s, p);
            continue;
        }
        dw_fwd_border(out_row, chan_in, filt, bv, oy, 0..x_lo, is, k, s, p);
        let iy0 = oy * s - p;
        let ix0 = x_lo * s - p;
        let span = (x_hi - 1 - x_lo) * s + k;
        let interior = &mut out_row[x_lo..x_hi];
        if k == 3 {
            let r0 = &chan_in[iy0 * is.w + ix0..iy0 * is.w + ix0 + span];
            let r1 = &chan_in[(iy0 + 1) * is.w + ix0..(iy0 + 1) * is.w + ix0 + span];
            let r2 = &chan_in[(iy0 + 2) * is.w + ix0..(iy0 + 2) * is.w + ix0 + span];
            match s {
                1 => dw3_fwd_row::<1>(interior, r0, r1, r2, filt, bv),
                2 => dw3_fwd_row::<2>(interior, r0, r1, r2, filt, bv),
                _ => {
                    for (j, o) in interior.iter_mut().enumerate() {
                        let x = j * s;
                        *o = bv
                            + r0[x] * filt[0]
                            + r0[x + 1] * filt[1]
                            + r0[x + 2] * filt[2]
                            + r1[x] * filt[3]
                            + r1[x + 1] * filt[4]
                            + r1[x + 2] * filt[5]
                            + r2[x] * filt[6]
                            + r2[x + 1] * filt[7]
                            + r2[x + 2] * filt[8];
                    }
                }
            }
        } else {
            // Generic kernel edge, still branch-free: every tap is in
            // bounds, so the `(ky, kx)` loops carry no checks.
            for (j, o) in interior.iter_mut().enumerate() {
                let x0 = ix0 + j * s;
                let mut acc = bv;
                for ky in 0..k {
                    let row = &chan_in[(iy0 + ky) * is.w + x0..(iy0 + ky) * is.w + x0 + k];
                    let frow = &filt[ky * k..ky * k + k];
                    for (&iv, &fv) in row.iter().zip(frow) {
                        acc += iv * fv;
                    }
                }
                *o = acc;
            }
        }
        dw_fwd_border(out_row, chan_in, filt, bv, oy, x_hi..os.w, is, k, s, p);
    }
}

/// Depth-wise convolution.
///
/// `weight` has shape `[c, 1, k, k]`; `bias`, when given, has `c` entries.
///
/// Results are bit-identical to [`reference::dwconv2d_ref`] for every
/// shape and geometry (the interior fast path replays the reference's
/// exact f32 operation sequence).
///
/// # Errors
///
/// Returns a [`TensorError`] when the weight shape disagrees with the
/// input channel count or geometry, or when the bias length is wrong.
pub fn dwconv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
) -> Result<Tensor> {
    let is = input.shape();
    check(is, weight.shape(), geo)?;
    if let Some(b) = bias {
        if b.len() != is.c {
            return Err(TensorError::ShapeMismatch {
                op: "dwconv2d bias",
                expected: format!("{} entries", is.c),
                got: format!("{} entries", b.len()),
            });
        }
    }
    let os = geo.out_shape(is, is.c);
    let mut out = Tensor::zeros(os);
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let kk = k * k;
    let _span = telemetry::span("tensor.dwconv_fwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.dwconv.fwd_calls").inc();
        telemetry::counter("tensor.dwconv.fwd_flops").add(2 * (os.numel() * kk) as u64);
    }
    // Every (item, channel) plane is independent: one parallel task per
    // output plane, each reading only its own input plane and filter.
    par_chunks_mut(out.as_mut_slice(), os.plane(), |plane, chan_out| {
        let c = plane % is.c;
        let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
        let bv = bias.map(|b| b[c]).unwrap_or(0.0);
        let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
        dw_plane_fwd(chan_out, chan_in, filt, bv, is, os, k, s, p);
    });
    Ok(out)
}

/// Gradients produced by [`dwconv2d_backward`].
#[derive(Debug, Clone)]
pub struct DwConvGrads {
    /// Gradient w.r.t. the input feature map.
    pub input: Tensor,
    /// Gradient w.r.t. the `[c, 1, k, k]` weight tensor.
    pub weight: Tensor,
    /// Gradient w.r.t. the per-channel bias.
    pub bias: Vec<f32>,
}

/// Border path of the backward pass: the original generic per-pixel
/// scatter over an `ox` range.
#[allow(clippy::too_many_arguments)]
#[inline]
fn dw_bwd_border(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go_row: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    oy: usize,
    ox_range: std::ops::Range<usize>,
    is: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let iy0 = (oy * s) as isize - p as isize;
    for ox in ox_range {
        let ix0 = (ox * s) as isize - p as isize;
        let g = go_row[ox];
        if g == 0.0 {
            continue;
        }
        *gb += g;
        for ky in 0..k {
            let iy = iy0 + ky as isize;
            if iy < 0 || iy >= is.h as isize {
                continue;
            }
            let row = iy as usize * is.w;
            let frow = ky * k;
            for kx in 0..k {
                let ix = ix0 + kx as isize;
                if ix >= 0 && ix < is.w as isize {
                    let ii = row + ix as usize;
                    gw_c[frow + kx] += g * chan_in[ii];
                    gi_c[ii] += g * filt[frow + kx];
                }
            }
        }
    }
}

/// Backward pass over one plane. The interior fast path visits pixels in
/// the same raster order and taps in the same `(ky, kx)` order as the
/// border/reference code, so every accumulator (`gi`, `gw`, `gb`) sees
/// the identical f32 addition sequence.
#[allow(clippy::too_many_arguments)]
fn dw_plane_bwd(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    is: Shape,
    os: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let (y_lo, y_hi) = interior_range(os.h, is.h, k, s, p);
    let (x_lo, x_hi) = interior_range(os.w, is.w, k, s, p);
    let unroll3 = k == 3;
    for oy in 0..os.h {
        let go_row = &go[oy * os.w..(oy + 1) * os.w];
        if oy < y_lo || oy >= y_hi || x_lo >= x_hi {
            dw_bwd_border(
                gi_c,
                gw_c,
                gb,
                go_row,
                chan_in,
                filt,
                oy,
                0..os.w,
                is,
                k,
                s,
                p,
            );
            continue;
        }
        dw_bwd_border(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            oy,
            0..x_lo,
            is,
            k,
            s,
            p,
        );
        let iy0 = oy * s - p;
        if unroll3 {
            // Three disjoint gradient rows, borrowed mutably at once so
            // the nine scatter targets resolve without re-slicing.
            let (f00, f01, f02) = (filt[0], filt[1], filt[2]);
            let (f10, f11, f12) = (filt[3], filt[4], filt[5]);
            let (f20, f21, f22) = (filt[6], filt[7], filt[8]);
            let (g0, rest) = gi_c[iy0 * is.w..].split_at_mut(is.w);
            let (g1, rest) = rest.split_at_mut(is.w);
            let g2 = &mut rest[..is.w];
            let r0 = &chan_in[iy0 * is.w..(iy0 + 1) * is.w];
            let r1 = &chan_in[(iy0 + 1) * is.w..(iy0 + 2) * is.w];
            let r2 = &chan_in[(iy0 + 2) * is.w..(iy0 + 3) * is.w];
            for (i, &g) in go_row[x_lo..x_hi].iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                *gb += g;
                let x = (x_lo + i) * s - p;
                gw_c[0] += g * r0[x];
                g0[x] += g * f00;
                gw_c[1] += g * r0[x + 1];
                g0[x + 1] += g * f01;
                gw_c[2] += g * r0[x + 2];
                g0[x + 2] += g * f02;
                gw_c[3] += g * r1[x];
                g1[x] += g * f10;
                gw_c[4] += g * r1[x + 1];
                g1[x + 1] += g * f11;
                gw_c[5] += g * r1[x + 2];
                g1[x + 2] += g * f12;
                gw_c[6] += g * r2[x];
                g2[x] += g * f20;
                gw_c[7] += g * r2[x + 1];
                g2[x + 1] += g * f21;
                gw_c[8] += g * r2[x + 2];
                g2[x + 2] += g * f22;
            }
        } else {
            for (i, &g) in go_row[x_lo..x_hi].iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                *gb += g;
                let x0 = (x_lo + i) * s - p;
                for ky in 0..k {
                    let base = (iy0 + ky) * is.w + x0;
                    let frow = ky * k;
                    for kx in 0..k {
                        gw_c[frow + kx] += g * chan_in[base + kx];
                        gi_c[base + kx] += g * filt[frow + kx];
                    }
                }
            }
        }
        dw_bwd_border(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            oy,
            x_hi..os.w,
            is,
            k,
            s,
            p,
        );
    }
}

/// Backward pass of [`dwconv2d`]. Bit-identical to
/// [`reference::dwconv2d_backward_ref`].
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_out`'s shape disagrees with the
/// forward geometry.
pub fn dwconv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geo: ConvGeometry,
) -> Result<DwConvGrads> {
    let is = input.shape();
    check(is, weight.shape(), geo)?;
    let os = geo.out_shape(is, is.c);
    if grad_out.shape() != os {
        return Err(TensorError::ShapeMismatch {
            op: "dwconv2d_backward",
            expected: os.to_string(),
            got: grad_out.shape().to_string(),
        });
    }
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let kk = k * k;
    let mut gi = Tensor::zeros(is);
    let mut gw = Tensor::zeros(weight.shape());
    let mut gb = vec![0.0f32; is.c];
    let _span = telemetry::span("tensor.dwconv_bwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.dwconv.bwd_calls").inc();
        telemetry::counter("tensor.dwconv.bwd_flops").add(4 * (os.numel() * kk) as u64);
    }
    // One task per (item, channel) plane: the input-gradient plane is
    // written in place and the filter/bias contribution goes to a private
    // `[grad_w | grad_b]` stripe, folded afterwards in ascending item
    // order per channel — the same order the serial loop accumulated in.
    let stripe = kk + 1;
    let mut partials = scratch::checkout_zeroed("tensor.dwconv_bwd", is.n * is.c * stripe);
    par_chunks_mut2(
        gi.as_mut_slice(),
        is.plane(),
        &mut partials,
        stripe,
        |plane, gi_c, partial| {
            let c = plane % is.c;
            let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
            let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
            let go = &grad_out.as_slice()[plane * os.plane()..(plane + 1) * os.plane()];
            let (gw_c, gb_c) = partial.split_at_mut(kk);
            dw_plane_bwd(gi_c, gw_c, &mut gb_c[0], go, chan_in, filt, is, os, k, s, p);
        },
    );
    for n in 0..is.n {
        for c in 0..is.c {
            let partial = &partials[(n * is.c + c) * stripe..(n * is.c + c + 1) * stripe];
            for (g, &pv) in gw.as_mut_slice()[c * kk..(c + 1) * kk]
                .iter_mut()
                .zip(partial)
            {
                *g += pv;
            }
            gb[c] += partial[kk];
        }
    }
    Ok(DwConvGrads {
        input: gi,
        weight: gw,
        bias: gb,
    })
}

pub mod reference {
    //! Specification kernels: the original fully bounds-checked loops,
    //! kept verbatim (minus telemetry) as the ground truth the
    //! specialized kernels must match **bit for bit**. Used by the
    //! `kernel_equivalence` proptests and the `kernel_bench` baseline;
    //! they share the production parallel decomposition so pooled runs
    //! compare like for like.

    use super::{check, DwConvGrads};
    use crate::conv::ConvGeometry;
    use crate::parallel::{par_chunks_mut, par_chunks_mut2};
    use crate::{Result, Tensor, TensorError};

    /// Generic depth-wise convolution (per-pixel bounds checks).
    ///
    /// # Errors
    ///
    /// Same contract as [`super::dwconv2d`].
    pub fn dwconv2d_ref(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&[f32]>,
        geo: ConvGeometry,
    ) -> Result<Tensor> {
        let is = input.shape();
        check(is, weight.shape(), geo)?;
        if let Some(b) = bias {
            if b.len() != is.c {
                return Err(TensorError::ShapeMismatch {
                    op: "dwconv2d bias",
                    expected: format!("{} entries", is.c),
                    got: format!("{} entries", b.len()),
                });
            }
        }
        let os = geo.out_shape(is, is.c);
        let mut out = Tensor::zeros(os);
        let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
        let kk = k * k;
        par_chunks_mut(out.as_mut_slice(), os.plane(), |plane, chan_out| {
            let c = plane % is.c;
            let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
            let bv = bias.map(|b| b[c]).unwrap_or(0.0);
            let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
            for oy in 0..os.h {
                let iy0 = (oy * s) as isize - p as isize;
                for ox in 0..os.w {
                    let ix0 = (ox * s) as isize - p as isize;
                    let mut acc = bv;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= is.h as isize {
                            continue;
                        }
                        let row = iy as usize * is.w;
                        let frow = ky * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < is.w as isize {
                                acc += chan_in[row + ix as usize] * filt[frow + kx];
                            }
                        }
                    }
                    chan_out[oy * os.w + ox] = acc;
                }
            }
        });
        Ok(out)
    }

    /// Generic backward pass (per-pixel bounds checks).
    ///
    /// # Errors
    ///
    /// Same contract as [`super::dwconv2d_backward`].
    pub fn dwconv2d_backward_ref(
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        geo: ConvGeometry,
    ) -> Result<DwConvGrads> {
        let is = input.shape();
        check(is, weight.shape(), geo)?;
        let os = geo.out_shape(is, is.c);
        if grad_out.shape() != os {
            return Err(TensorError::ShapeMismatch {
                op: "dwconv2d_backward",
                expected: os.to_string(),
                got: grad_out.shape().to_string(),
            });
        }
        let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
        let kk = k * k;
        let mut gi = Tensor::zeros(is);
        let mut gw = Tensor::zeros(weight.shape());
        let mut gb = vec![0.0f32; is.c];
        let stripe = kk + 1;
        let mut partials = vec![0.0f32; is.n * is.c * stripe];
        par_chunks_mut2(
            gi.as_mut_slice(),
            is.plane(),
            &mut partials,
            stripe,
            |plane, gi_c, partial| {
                let c = plane % is.c;
                let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
                let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
                let go = &grad_out.as_slice()[plane * os.plane()..(plane + 1) * os.plane()];
                let (gw_c, gb_c) = partial.split_at_mut(kk);
                for oy in 0..os.h {
                    let iy0 = (oy * s) as isize - p as isize;
                    for ox in 0..os.w {
                        let ix0 = (ox * s) as isize - p as isize;
                        let g = go[oy * os.w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb_c[0] += g;
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= is.h as isize {
                                continue;
                            }
                            let row = iy as usize * is.w;
                            let frow = ky * k;
                            for kx in 0..k {
                                let ix = ix0 + kx as isize;
                                if ix >= 0 && ix < is.w as isize {
                                    let ii = row + ix as usize;
                                    gw_c[frow + kx] += g * chan_in[ii];
                                    gi_c[ii] += g * filt[frow + kx];
                                }
                            }
                        }
                    }
                }
            },
        );
        for n in 0..is.n {
            for c in 0..is.c {
                let partial = &partials[(n * is.c + c) * stripe..(n * is.c + c + 1) * stripe];
                for (g, &pv) in gw.as_mut_slice()[c * kk..(c + 1) * kk]
                    .iter_mut()
                    .zip(partial)
                {
                    *g += pv;
                }
                gb[c] += partial[kk];
            }
        }
        Ok(DwConvGrads {
            input: gi,
            weight: gw,
            bias: gb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, conv2d_backward};

    fn filled(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        Tensor::from_vec(shape, (0..shape.numel()).map(f).collect()).unwrap()
    }

    /// A depth-wise conv equals a dense conv whose weight is block-diagonal
    /// across channels. We use that identity as the reference.
    fn as_dense_weight(dw: &Tensor, c: usize, k: usize) -> Tensor {
        let mut dense = Tensor::zeros(Shape::new(c, c, k, k));
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    *dense.at_mut(ch, ch, ky, kx) = dw.at(ch, 0, ky, kx);
                }
            }
        }
        dense
    }

    #[test]
    fn interior_range_cases() {
        // 3x3 stride 1 pad 1 over width 8: out 8, interior 1..7.
        assert_eq!(interior_range(8, 8, 3, 1, 1), (1, 7));
        // No padding: every position is interior.
        assert_eq!(interior_range(6, 8, 3, 1, 0), (0, 6));
        // Stride 2 pad 1 over width 7: out 4; ox=0 touches ix -1, ox=3
        // touches ix 7 (out of range): interior 1..3.
        assert_eq!(interior_range(4, 7, 3, 2, 1), (1, 3));
        // Kernel wider than input: empty interior.
        let (lo, hi) = interior_range(1, 2, 3, 1, 1);
        assert!(lo >= hi, "interior must be empty, got {lo}..{hi}");
        assert_eq!(interior_range(2, 1, 3, 1, 1), (0, 0));
        // 1x1 kernel, no pad: all interior.
        assert_eq!(interior_range(5, 5, 1, 1, 0), (0, 5));
    }

    #[test]
    fn forward_matches_dense_blockdiag() {
        let geo = ConvGeometry::same3x3();
        let c = 4;
        let x = filled(Shape::new(2, c, 5, 6), |i| ((i % 10) as f32 - 4.5) * 0.1);
        let w = filled(Shape::new(c, 1, 3, 3), |i| ((i % 7) as f32 - 3.0) * 0.2);
        let b: Vec<f32> = (0..c).map(|i| i as f32 * 0.1).collect();
        let got = dwconv2d(&x, &w, Some(&b), geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d(&x, &dense, Some(&b), geo).unwrap();
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn strided_forward_matches_dense() {
        let geo = ConvGeometry::new(3, 2, 1);
        let c = 3;
        let x = filled(Shape::new(1, c, 7, 8), |i| (i as f32 * 0.37).sin());
        let w = filled(Shape::new(c, 1, 3, 3), |i| (i as f32 * 0.11).cos());
        let got = dwconv2d(&x, &w, None, geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d(&x, &dense, None, geo).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn specialized_is_bit_identical_to_reference() {
        // The proptest suite covers random geometries; this pins the two
        // SkyNet geometries (3x3 s1 p1, 3x3 s2 p1) plus a pad-heavy one.
        for (s, p, h, w) in [(1, 1, 9, 12), (2, 1, 9, 12), (1, 2, 5, 5)] {
            let geo = ConvGeometry::new(3, s, p);
            let c = 3;
            let x = filled(Shape::new(2, c, h, w), |i| ((i % 17) as f32 - 8.0) * 0.13);
            let wt = filled(Shape::new(c, 1, 3, 3), |i| ((i % 5) as f32 - 2.0) * 0.4);
            let b: Vec<f32> = (0..c).map(|i| i as f32 * 0.3 - 0.2).collect();
            let got = dwconv2d(&x, &wt, Some(&b), geo).unwrap();
            let want = reference::dwconv2d_ref(&x, &wt, Some(&b), geo).unwrap();
            assert_eq!(
                got.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "fwd bits diverged at s={s} p={p}"
            );
            let go = filled(got.shape(), |i| ((i % 7) as f32 - 3.0) * 0.21);
            let ga = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
            let gr = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
            assert_eq!(ga.input, gr.input, "grad_in diverged at s={s} p={p}");
            assert_eq!(ga.weight, gr.weight, "grad_w diverged at s={s} p={p}");
            assert_eq!(ga.bias, gr.bias, "grad_b diverged at s={s} p={p}");
        }
    }

    #[test]
    fn backward_matches_dense_blockdiag() {
        let geo = ConvGeometry::same3x3();
        let c = 3;
        let x = filled(Shape::new(1, c, 4, 5), |i| ((i % 8) as f32 - 3.5) * 0.15);
        let w = filled(Shape::new(c, 1, 3, 3), |i| ((i % 5) as f32 - 2.0) * 0.1);
        let out = dwconv2d(&x, &w, None, geo).unwrap();
        let go = filled(out.shape(), |i| ((i % 4) as f32 - 1.5) * 0.2);

        let got = dwconv2d_backward(&x, &w, &go, geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d_backward(&x, &dense, &go, geo).unwrap();

        for (a, e) in got.input.as_slice().iter().zip(want.input.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
        // Dense weight grad on the diagonal blocks must equal the dw grad.
        for ch in 0..c {
            for ky in 0..3 {
                for kx in 0..3 {
                    let a = got.weight.at(ch, 0, ky, kx);
                    let e = want.weight.at(ch, ch, ky, kx);
                    assert!((a - e).abs() < 1e-4);
                }
            }
        }
        for (a, e) in got.bias.iter().zip(&want.bias) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_weight() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(4, 1, 3, 3));
        assert!(dwconv2d(&x, &w, None, ConvGeometry::same3x3()).is_err());
    }
}
