//! Depth-wise 2-D convolution — the `DW-Conv3` half of the SkyNet Bundle.
//!
//! Each channel is convolved with its own `k×k` filter (channel multiplier
//! 1, as in MobileNet and SkyNet). The kernels are direct loops rather than
//! im2col: with one filter per channel there is no matrix structure to
//! exploit, and direct loops match the line-buffer dataflow of the paper's
//! DW-Conv FPGA IP.
//!
//! ## Interior/border split
//!
//! The profiler showed the original per-pixel bounds-checked loop eating
//! two thirds of forward wall time, almost all of it on taps that can
//! never fall outside the input. Each output plane is therefore split
//! into a **branch-free interior** — every tap in bounds by
//! construction, with the `k = 3` case fully unrolled for strides 1 and
//! 2 (the only geometries SkyNet instantiates) — and a thin **border**
//! handled by the original generic code.
//!
//! The split is *per row*, never a separate interior pass: the backward
//! kernel scatter-accumulates into shared gradient buffers, so output
//! pixels must be visited in a fixed raster order for determinism (f32
//! addition does not commute).
//!
//! ## SIMD and the lane-ordered contract
//!
//! The interior rows of the `k = 3`, stride-1/2 kernels (the only
//! geometries SkyNet instantiates) run 8 outputs at a time through the
//! [`simd`] lane abstraction, dispatched over the active
//! backend:
//!
//! * **forward** — each output pixel is independent, but the lane
//!   kernel sums its nine products in a fixed **balanced tree** (see
//!   `dw3_fwd_row_pre`) instead of the reference's left-to-right chain:
//!   the tree cuts the add critical path from 9 to 4 dependent adds,
//!   which is where the wide backends' speedup comes from. Every
//!   backend — the scalar one included — replays that exact tree, so
//!   backends are bit-identical to each other and within rounding
//!   tolerance of [`reference::dwconv2d_ref`] on the lane geometries
//!   (other geometries keep the reference order bitwise);
//! * **backward** — the weight/bias gradients are *reductions* over
//!   pixels, so vectorizing reorders their f32 additions. The interior
//!   runs a **lane-ordered** two-stream schedule (border + tail pixels
//!   scalar in raster order, full 8-lane blocks accumulated tap-major
//!   into vector accumulators folded once per plane through the fixed
//!   [`reduce_add`](crate::simd::F32x8::reduce_add) tree). That schedule
//!   is itself deterministic and identical on every backend — the scalar
//!   backend replays it literally — but it is a *different* ordering
//!   from [`reference::dwconv2d_backward_ref`], so backward is compared
//!   to the reference with a tolerance, and bitwise only across
//!   backends/thread counts (`kernel_equivalence` + `simd_equivalence`).

use crate::conv::{check_geometry, ConvGeometry};
use crate::parallel::{par_chunks_mut, par_chunks_mut2};
use crate::simd::{self, Backend, F32x8, ScalarV, LANES};
use crate::{scratch, telemetry};
use crate::{Result, Shape, Tensor, TensorError};

#[cfg(target_arch = "x86_64")]
use crate::simd::{Avx2V, Sse2V};

fn check(input: Shape, weight: Shape, geo: ConvGeometry) -> Result<()> {
    if weight.n != input.c || weight.c != 1 || weight.h != geo.kernel || weight.w != geo.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "dwconv2d",
            expected: format!("weight [{}, 1, {}, {}]", input.c, geo.kernel, geo.kernel),
            got: weight.to_string(),
        });
    }
    check_geometry(input, geo, "dwconv2d")
}

/// Output positions along one axis whose receptive field lies fully
/// inside the input: the half-open interior range `lo..hi` (possibly
/// empty). Positions outside it need per-tap bounds checks.
fn interior_range(out: usize, inp: usize, k: usize, s: usize, p: usize) -> (usize, usize) {
    if inp + p < k || k == 0 || s == 0 {
        return (0, 0);
    }
    let lo = p.div_ceil(s).min(out);
    let hi = ((inp + p - k) / s + 1).min(out);
    (lo.min(hi), hi)
}

/// One interior output row of a fully unrolled 3×3 depth-wise filter.
/// `r0..r2` are the three input rows, already offset so output `j` reads
/// columns `j*S .. j*S+2`. The nine taps accumulate in `(ky, kx)` order —
/// the exact f32 addition sequence of the reference kernel.
#[inline]
fn dw3_fwd_row<const S: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    f: &[f32],
    bv: f32,
) {
    let (f00, f01, f02) = (f[0], f[1], f[2]);
    let (f10, f11, f12) = (f[3], f[4], f[5]);
    let (f20, f21, f22) = (f[6], f[7], f[8]);
    for (j, o) in out.iter_mut().enumerate() {
        let x = j * S;
        *o = bv
            + r0[x] * f00
            + r0[x + 1] * f01
            + r0[x + 2] * f02
            + r1[x] * f10
            + r1[x + 1] * f11
            + r1[x + 2] * f12
            + r2[x] * f20
            + r2[x + 1] * f21
            + r2[x + 2] * f22;
    }
}

/// One interior tap: a contiguous 8-lane load at stride 1, a 15-slot
/// de-interleaving load at stride 2.
///
/// # Safety
/// `row` must be valid for reads of 8 (S = 1) / 15 (S = 2) `f32`s.
#[inline(always)]
unsafe fn tap<V: F32x8, const S: usize>(row: *const f32) -> V {
    // SAFETY: forwarded to the caller.
    unsafe {
        if S == 1 {
            V::load_ptr(row)
        } else {
            V::load_stride2_ptr(row)
        }
    }
}

/// One 8-pixel forward block at pre-offset row/output pointers. Each
/// lane's value depends only on its pixel index — never on where the
/// pixel sits within the block — so overlapping blocks recompute
/// identical bits.
///
/// # Safety
/// Each row pointer must be valid for the tap reach (`2 + 8` slots at
/// S = 1, `2 + 15` at S = 2) and `po` for an 8-slot store.
#[inline(always)]
unsafe fn dw3_fwd_block<V: F32x8, const S: usize>(
    p0: *const f32,
    p1: *const f32,
    p2: *const f32,
    po: *mut f32,
    fv: &[V; 9],
    bvv: V,
) {
    // SAFETY: forwarded to the caller.
    unsafe {
        let t0 = tap::<V, S>(p0).mul(fv[0]);
        let t1 = tap::<V, S>(p0.add(1)).mul(fv[1]);
        let t2 = tap::<V, S>(p0.add(2)).mul(fv[2]);
        let t3 = tap::<V, S>(p1).mul(fv[3]);
        let t4 = tap::<V, S>(p1.add(1)).mul(fv[4]);
        let t5 = tap::<V, S>(p1.add(2)).mul(fv[5]);
        let t6 = tap::<V, S>(p2).mul(fv[6]);
        let t7 = tap::<V, S>(p2.add(1)).mul(fv[7]);
        let t8 = tap::<V, S>(p2.add(2)).mul(fv[8]);
        // The documented balanced tree — do not reassociate.
        let left = t0.add(t1).add(t2.add(t3));
        let right = t4.add(t5).add(t6.add(t7));
        let acc = left.add(right).add(t8.add(bvv));
        acc.store_ptr(po);
    }
}

/// Vector interior row with the filter/bias lanes already splatted (the
/// per-plane drivers hoist the ten broadcasts out of the row loop).
/// Each lane sums its nine products in the fixed balanced tree
///
/// ```text
/// ((t0+t1) + (t2+t3)) + ((t4+t5) + (t6+t7))  +  (t8 + bias)
/// ```
///
/// (final sum associated `(left + right) + tail`), **not** the
/// reference's left-to-right chain: the tree cuts the add critical path
/// from 9 to 4 dependent adds per pixel, which is what lets the wide
/// backends run ahead of the scalar chain. Every backend replays this
/// exact order, so backends stay bit-identical to each other while the
/// interior differs from [`reference`] by rounding only (the
/// `kernel_equivalence` suite bounds it).
///
/// A sub-8-pixel remainder is finished by one **overlapped** block
/// ending at the last pixel: a lane's value is independent of its
/// position within a block, so the re-stored pixels keep their exact
/// bits and no serial tail loop runs. Rows shorter than 8 pixels fall
/// back to the chain-ordered [`dw3_fwd_row`] on every backend alike.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw3_fwd_row_pre<V: F32x8, const S: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    fv: &[V; 9],
    bvv: V,
    f: &[f32],
    bv: f32,
) {
    let m = out.len();
    if m < LANES {
        return dw3_fwd_row::<S>(out, r0, r1, r2, f, bv);
    }
    // One bounds proof up front, then an unchecked block loop: LLVM does
    // not eliminate per-tap slice checks through the backend dispatch,
    // and 9 taps × (slice + length check) per 8-pixel block otherwise
    // outnumber the 19 arithmetic instructions. The furthest read of any
    // block — including the overlapped one at `m - LANES` — is within
    // the row span `(m-1)*S + 3` that every caller provides.
    let need = (m - 1) * S + 3;
    assert!(
        r0.len() >= need && r1.len() >= need && r2.len() >= need,
        "interior rows too short for vector blocks"
    );
    let m8 = simd::vector_cover(m);
    let (p0, p1, p2, po) = (r0.as_ptr(), r1.as_ptr(), r2.as_ptr(), out.as_mut_ptr());
    // Two independent blocks per iteration: their balanced trees overlap
    // in the pipeline, hiding the add latency a single-block loop leaves
    // exposed. Block order and per-block arithmetic are unchanged, so
    // the output is bitwise identical to the one-block-at-a-time loop.
    let mut j = 0;
    // SAFETY: the assert above proves every tap of every block ending at
    // or before pixel `m` stays inside `r0`/`r1`/`r2`, and `j + 8 <= m
    // <= out.len()` covers each store.
    while j + 2 * LANES <= m8 {
        let x = j * S;
        unsafe {
            dw3_fwd_block::<V, S>(p0.add(x), p1.add(x), p2.add(x), po.add(j), fv, bvv);
            let x2 = x + LANES * S;
            dw3_fwd_block::<V, S>(
                p0.add(x2),
                p1.add(x2),
                p2.add(x2),
                po.add(j + LANES),
                fv,
                bvv,
            );
        }
        j += 2 * LANES;
    }
    if j < m8 {
        let x = j * S;
        // SAFETY: as above; `j + LANES <= m8` by `vector_cover`.
        unsafe {
            dw3_fwd_block::<V, S>(p0.add(x), p1.add(x), p2.add(x), po.add(j), fv, bvv);
        }
    }
    if m8 < m {
        // Overlapped final block: recomputes up to 7 already-stored
        // pixels bit-identically and lands the remainder without a
        // serial tail.
        let j = m - LANES;
        let x = j * S;
        // SAFETY: as above; `j + LANES == m`.
        unsafe {
            dw3_fwd_block::<V, S>(p0.add(x), p1.add(x), p2.add(x), po.add(j), fv, bvv);
        }
    }
}

/// [`dw3_fwd_row_pre`] with the splats done here: the standalone row
/// entry used by the unit tests and microbenchmarks.
#[cfg(test)]
#[inline(always)]
fn dw3_fwd_row_v<V: F32x8, const S: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    f: &[f32],
    bv: f32,
) {
    let fv: [V; 9] = std::array::from_fn(|t| V::splat(f[t]));
    let bvv = V::splat(bv);
    dw3_fwd_row_pre::<V, S>(out, r0, r1, r2, &fv, bvv, f, bv);
}

#[cfg(all(test, target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn dw3_fwd_row_avx2<const S: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    f: &[f32],
    bv: f32,
) {
    dw3_fwd_row_v::<Avx2V, S>(out, r0, r1, r2, f, bv)
}

/// All interior forward rows of one plane, one backend: the filter and
/// bias broadcasts happen once here, not once per row.
///
/// `inline(always)` is load-bearing: the AVX2 wrapper relies on this
/// body inlining into its `#[target_feature(enable = "avx2")]` scope —
/// as a standalone baseline-ISA function the 256-bit ops would be
/// legalized into split halves.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn dw3_fwd_interior_v<V: F32x8, const S: usize>(
    chan_out: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    (x_lo, x_hi): (usize, usize),
    (y_lo, y_hi): (usize, usize),
    p: usize,
) {
    let fv: [V; 9] = std::array::from_fn(|t| V::splat(filt[t]));
    let bvv = V::splat(bv);
    let ix0 = x_lo * S - p;
    let span = (x_hi - 1 - x_lo) * S + 3;
    for oy in y_lo..y_hi {
        let iy0 = oy * S - p;
        let r0 = &chan_in[iy0 * is.w + ix0..iy0 * is.w + ix0 + span];
        let r1 = &chan_in[(iy0 + 1) * is.w + ix0..(iy0 + 1) * is.w + ix0 + span];
        let r2 = &chan_in[(iy0 + 2) * is.w + ix0..(iy0 + 2) * is.w + ix0 + span];
        let interior = &mut chan_out[oy * os.w + x_lo..oy * os.w + x_hi];
        dw3_fwd_row_pre::<V, S>(interior, r0, r1, r2, &fv, bvv, filt, bv);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dw3_fwd_interior_avx2<const S: usize>(
    chan_out: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    xr: (usize, usize),
    yr: (usize, usize),
    p: usize,
) {
    dw3_fwd_interior_v::<Avx2V, S>(chan_out, chan_in, filt, bv, is, os, xr, yr, p)
}

/// Interior forward dispatch, per plane. Every backend — including
/// scalar — runs the generic lane kernel with its balanced accumulation
/// tree, so all backends are bit-identical by construction ([`ScalarV`]
/// replays the vector order literally). The chain-ordered
/// [`dw3_fwd_row`] serves sub-8-pixel interiors and non-lane geometries.
#[allow(clippy::too_many_arguments)]
#[inline]
fn dw3_fwd_interior_dispatch<const S: usize>(
    be: Backend,
    chan_out: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    xr: (usize, usize),
    yr: (usize, usize),
    p: usize,
) {
    match be {
        Backend::Scalar => {
            dw3_fwd_interior_v::<ScalarV, S>(chan_out, chan_in, filt, bv, is, os, xr, yr, p)
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => {
            dw3_fwd_interior_v::<Sse2V, S>(chan_out, chan_in, filt, bv, is, os, xr, yr, p)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backends are only ever active after runtime
        // detection succeeded (`simd::active`/`simd::force` enforce it).
        Backend::Avx2 | Backend::Avx2Pair => unsafe {
            dw3_fwd_interior_avx2::<S>(chan_out, chan_in, filt, bv, is, os, xr, yr, p)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector backends are never active off x86_64"),
    }
}

// ---------------------------------------------------------------------------
// Fused-store variants: DW-Conv3 + BN-eval + clamped activation
// ---------------------------------------------------------------------------

/// Splatted per-channel BN-eval + clamp epilogue constants for the fused
/// store loops: `y = min(max(g·(x − m)·inv_std + b, 0), hi)`.
#[derive(Clone, Copy)]
struct EpV<V> {
    mv: V,
    sv: V,
    gv: V,
    bv: V,
    zero: V,
    hv: V,
}

impl<V: F32x8> EpV<V> {
    #[inline(always)]
    fn new((m, inv_std, g, b, hi): (f32, f32, f32, f32, f32)) -> Self {
        EpV {
            mv: V::splat(m),
            sv: V::splat(inv_std),
            gv: V::splat(g),
            bv: V::splat(b),
            zero: V::splat(0.0),
            hv: V::splat(hi),
        }
    }

    /// [`simd::bn_act_inplace`]'s exact vector operation sequence.
    #[inline(always)]
    fn apply(&self, x: V) -> V {
        self.gv
            .mul(x.sub(self.mv))
            .mul(self.sv)
            .add(self.bv)
            .max(self.zero)
            .min(self.hv)
    }
}

/// Scalar epilogue, bitwise-equal to [`EpV::apply`] per element (the
/// same `maxps`/`minps` lane semantics the elementwise kernels' scalar
/// tails replay).
#[inline(always)]
fn bnact_scalar(xs: &mut [f32], (m, inv_std, g, b, hi): (f32, f32, f32, f32, f32)) {
    for v in xs {
        let y = g * (*v - m) * inv_std + b;
        let t = if y > 0.0 { y } else { 0.0 };
        *v = if t < hi { t } else { hi };
    }
}

/// [`dw3_fwd_block`] with the BN+activation epilogue applied in
/// register before the store — the fused store loop. The accumulator
/// replays the documented balanced tree bit-for-bit; the epilogue is
/// per-lane, so overlapped blocks still recompute identical bits.
///
/// # Safety
/// Same contract as [`dw3_fwd_block`].
#[inline(always)]
unsafe fn dw3_bnact_block<V: F32x8, const S: usize>(
    p0: *const f32,
    p1: *const f32,
    p2: *const f32,
    po: *mut f32,
    fv: &[V; 9],
    bvv: V,
    ep: &EpV<V>,
) {
    // SAFETY: forwarded to the caller.
    unsafe {
        let t0 = tap::<V, S>(p0).mul(fv[0]);
        let t1 = tap::<V, S>(p0.add(1)).mul(fv[1]);
        let t2 = tap::<V, S>(p0.add(2)).mul(fv[2]);
        let t3 = tap::<V, S>(p1).mul(fv[3]);
        let t4 = tap::<V, S>(p1.add(1)).mul(fv[4]);
        let t5 = tap::<V, S>(p1.add(2)).mul(fv[5]);
        let t6 = tap::<V, S>(p2).mul(fv[6]);
        let t7 = tap::<V, S>(p2.add(1)).mul(fv[7]);
        let t8 = tap::<V, S>(p2.add(2)).mul(fv[8]);
        // The documented balanced tree — do not reassociate.
        let left = t0.add(t1).add(t2.add(t3));
        let right = t4.add(t5).add(t6.add(t7));
        let acc = left.add(right).add(t8.add(bvv));
        ep.apply(acc).store_ptr(po);
    }
}

/// [`dw3_fwd_row_pre`] with the fused BN+activation store: identical
/// block schedule (two independent blocks per iteration, overlapped
/// final block), identical sub-8-pixel fallback — the chain-ordered
/// [`dw3_fwd_row`] followed by the bitwise-equal scalar epilogue.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw3_bnact_row_pre<V: F32x8, const S: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    fv: &[V; 9],
    bvv: V,
    epv: &EpV<V>,
    f: &[f32],
    bv: f32,
    ep: (f32, f32, f32, f32, f32),
) {
    let m = out.len();
    if m < LANES {
        dw3_fwd_row::<S>(out, r0, r1, r2, f, bv);
        bnact_scalar(out, ep);
        return;
    }
    let need = (m - 1) * S + 3;
    assert!(
        r0.len() >= need && r1.len() >= need && r2.len() >= need,
        "interior rows too short for vector blocks"
    );
    let m8 = simd::vector_cover(m);
    let (p0, p1, p2, po) = (r0.as_ptr(), r1.as_ptr(), r2.as_ptr(), out.as_mut_ptr());
    let mut j = 0;
    // SAFETY: the assert above proves every tap of every block ending at
    // or before pixel `m` stays inside `r0`/`r1`/`r2`, and `j + 8 <= m
    // <= out.len()` covers each store (same proof as `dw3_fwd_row_pre`).
    while j + 2 * LANES <= m8 {
        let x = j * S;
        unsafe {
            dw3_bnact_block::<V, S>(p0.add(x), p1.add(x), p2.add(x), po.add(j), fv, bvv, epv);
            let x2 = x + LANES * S;
            dw3_bnact_block::<V, S>(
                p0.add(x2),
                p1.add(x2),
                p2.add(x2),
                po.add(j + LANES),
                fv,
                bvv,
                epv,
            );
        }
        j += 2 * LANES;
    }
    if j < m8 {
        let x = j * S;
        // SAFETY: as above; `j + LANES <= m8` by `vector_cover`.
        unsafe {
            dw3_bnact_block::<V, S>(p0.add(x), p1.add(x), p2.add(x), po.add(j), fv, bvv, epv);
        }
    }
    if m8 < m {
        let j = m - LANES;
        let x = j * S;
        // SAFETY: as above; `j + LANES == m`.
        unsafe {
            dw3_bnact_block::<V, S>(p0.add(x), p1.add(x), p2.add(x), po.add(j), fv, bvv, epv);
        }
    }
}

/// Output rows `y0..y1` of one fused `DW-Conv3 → BN-eval → activation`
/// plane, written contiguously into a `(y1 − y0) × os.w` destination
/// tile. Replays [`dw_plane_fwd`]'s exact per-row structure for the
/// `k = 3`, stride-1/2 lane geometries — border pixels through
/// [`dw_fwd_border`] plus the scalar epilogue, interior pixels through
/// the fused-store lane kernel — so each output element's bits equal
/// `dwconv2d` → `bn_apply_eval` → `relu/relu6` applied layerwise.
/// Output rows are computed from input rows `y·S − p ..` only, so band
/// decompositions over `y` cannot change any value.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw3_bnact_band_v<V: F32x8, const S: usize>(
    dst: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    p: usize,
    (y0, y1): (usize, usize),
    ep: (f32, f32, f32, f32, f32),
) {
    let (y_lo, y_hi) = interior_range(os.h, is.h, 3, S, p);
    let (x_lo, x_hi) = interior_range(os.w, is.w, 3, S, p);
    let lane = x_lo < x_hi && y_lo < y_hi;
    let fv: [V; 9] = std::array::from_fn(|t| V::splat(filt[t]));
    let bvv = V::splat(bv);
    let epv = EpV::<V>::new(ep);
    for oy in y0..y1 {
        let row = &mut dst[(oy - y0) * os.w..(oy - y0 + 1) * os.w];
        if !lane || oy < y_lo || oy >= y_hi {
            dw_fwd_border(row, chan_in, filt, bv, oy, 0..os.w, is, 3, S, p);
            bnact_scalar(row, ep);
            continue;
        }
        dw_fwd_border(row, chan_in, filt, bv, oy, 0..x_lo, is, 3, S, p);
        bnact_scalar(&mut row[..x_lo], ep);
        dw_fwd_border(row, chan_in, filt, bv, oy, x_hi..os.w, is, 3, S, p);
        bnact_scalar(&mut row[x_hi..], ep);
        let iy0 = oy * S - p;
        let ix0 = x_lo * S - p;
        let span = (x_hi - 1 - x_lo) * S + 3;
        let r0 = &chan_in[iy0 * is.w + ix0..iy0 * is.w + ix0 + span];
        let r1 = &chan_in[(iy0 + 1) * is.w + ix0..(iy0 + 1) * is.w + ix0 + span];
        let r2 = &chan_in[(iy0 + 2) * is.w + ix0..(iy0 + 2) * is.w + ix0 + span];
        let interior = &mut row[x_lo..x_hi];
        dw3_bnact_row_pre::<V, S>(interior, r0, r1, r2, &fv, bvv, &epv, filt, bv, ep);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dw3_bnact_band_avx2<const S: usize>(
    dst: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    p: usize,
    yr: (usize, usize),
    ep: (f32, f32, f32, f32, f32),
) {
    dw3_bnact_band_v::<Avx2V, S>(dst, chan_in, filt, bv, is, os, p, yr, ep)
}

/// Fused `DW-Conv3 → BN-eval → activation` band dispatch — the
/// crate-internal entry the fused bundle executor ([`crate::fused`])
/// drives. `ep` is `(mean, inv_std, gamma, beta, ceiling)` with
/// `ceiling = f32::INFINITY` for plain ReLU.
///
/// # Panics
///
/// Panics when the stride is not 1 or 2 (the only fused geometries; the
/// planner never builds a fused plan for anything else).
#[allow(clippy::too_many_arguments)]
pub(crate) fn dw3_bnact_band(
    be: Backend,
    dst: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    s: usize,
    p: usize,
    yr: (usize, usize),
    ep: (f32, f32, f32, f32, f32),
) {
    macro_rules! go {
        ($S:literal) => {
            match be {
                Backend::Scalar => {
                    dw3_bnact_band_v::<ScalarV, $S>(dst, chan_in, filt, bv, is, os, p, yr, ep)
                }
                #[cfg(target_arch = "x86_64")]
                Backend::Sse2 => {
                    dw3_bnact_band_v::<Sse2V, $S>(dst, chan_in, filt, bv, is, os, p, yr, ep)
                }
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the Avx2 backends are only ever active after
                // runtime detection succeeded.
                Backend::Avx2 | Backend::Avx2Pair => unsafe {
                    dw3_bnact_band_avx2::<$S>(dst, chan_in, filt, bv, is, os, p, yr, ep)
                },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!("vector backends are never active off x86_64"),
            }
        };
    }
    match s {
        1 => go!(1),
        2 => go!(2),
        other => panic!("dw3_bnact_band: unsupported stride {other} (expected 1 or 2)"),
    }
}

/// Border path: the original generic per-pixel loop over an `ox` range.
/// `k = 3` takes a specialized body with the same tap order — the valid
/// `(ky, kx)` window is computed once per pixel instead of testing every
/// tap, so skipped taps cost nothing and the output bits are unchanged.
#[allow(clippy::too_many_arguments)]
#[inline]
fn dw_fwd_border(
    out_row: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    oy: usize,
    ox_range: std::ops::Range<usize>,
    is: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let iy0 = (oy * s) as isize - p as isize;
    if k == 3 {
        let ky_lo = (-iy0).max(0) as usize;
        let ky_hi = (is.h as isize - iy0).clamp(0, 3) as usize;
        for ox in ox_range {
            let ix0 = (ox * s) as isize - p as isize;
            let kx_lo = (-ix0).max(0) as usize;
            let kx_hi = (is.w as isize - ix0).clamp(0, 3) as usize;
            let mut acc = bv;
            for ky in ky_lo..ky_hi {
                let row = (iy0 + ky as isize) as usize * is.w;
                let base = row.wrapping_add_signed(ix0 + kx_lo as isize);
                let frow = ky * 3 + kx_lo;
                for t in 0..kx_hi.saturating_sub(kx_lo) {
                    acc += chan_in[base + t] * filt[frow + t];
                }
            }
            out_row[ox] = acc;
        }
        return;
    }
    for ox in ox_range {
        let ix0 = (ox * s) as isize - p as isize;
        let mut acc = bv;
        for ky in 0..k {
            let iy = iy0 + ky as isize;
            if iy < 0 || iy >= is.h as isize {
                continue;
            }
            let row = iy as usize * is.w;
            let frow = ky * k;
            for kx in 0..k {
                let ix = ix0 + kx as isize;
                if ix >= 0 && ix < is.w as isize {
                    acc += chan_in[row + ix as usize] * filt[frow + kx];
                }
            }
        }
        out_row[ox] = acc;
    }
}

/// Forward pass over one `(item, channel)` plane with the
/// interior/border split.
#[allow(clippy::too_many_arguments)]
fn dw_plane_fwd(
    be: Backend,
    chan_out: &mut [f32],
    chan_in: &[f32],
    filt: &[f32],
    bv: f32,
    is: Shape,
    os: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let (y_lo, y_hi) = interior_range(os.h, is.h, k, s, p);
    let (x_lo, x_hi) = interior_range(os.w, is.w, k, s, p);
    // Lane geometries run the borders first (scalar, raster order within
    // each row band) and then all interior rows through one per-plane
    // dispatch — border and interior regions are disjoint, so the write
    // reordering changes no value.
    if k == 3 && (s == 1 || s == 2) && x_lo < x_hi && y_lo < y_hi {
        for oy in 0..os.h {
            let out_row = &mut chan_out[oy * os.w..(oy + 1) * os.w];
            if oy < y_lo || oy >= y_hi {
                dw_fwd_border(out_row, chan_in, filt, bv, oy, 0..os.w, is, k, s, p);
            } else {
                dw_fwd_border(out_row, chan_in, filt, bv, oy, 0..x_lo, is, k, s, p);
                dw_fwd_border(out_row, chan_in, filt, bv, oy, x_hi..os.w, is, k, s, p);
            }
        }
        let (xr, yr) = ((x_lo, x_hi), (y_lo, y_hi));
        match s {
            1 => dw3_fwd_interior_dispatch::<1>(be, chan_out, chan_in, filt, bv, is, os, xr, yr, p),
            _ => dw3_fwd_interior_dispatch::<2>(be, chan_out, chan_in, filt, bv, is, os, xr, yr, p),
        }
        return;
    }
    for oy in 0..os.h {
        let out_row = &mut chan_out[oy * os.w..(oy + 1) * os.w];
        if oy < y_lo || oy >= y_hi || x_lo >= x_hi {
            dw_fwd_border(out_row, chan_in, filt, bv, oy, 0..os.w, is, k, s, p);
            continue;
        }
        dw_fwd_border(out_row, chan_in, filt, bv, oy, 0..x_lo, is, k, s, p);
        let iy0 = oy * s - p;
        let ix0 = x_lo * s - p;
        let span = (x_hi - 1 - x_lo) * s + k;
        let interior = &mut out_row[x_lo..x_hi];
        if k == 3 {
            let r0 = &chan_in[iy0 * is.w + ix0..iy0 * is.w + ix0 + span];
            let r1 = &chan_in[(iy0 + 1) * is.w + ix0..(iy0 + 1) * is.w + ix0 + span];
            let r2 = &chan_in[(iy0 + 2) * is.w + ix0..(iy0 + 2) * is.w + ix0 + span];
            // k = 3 with a stride above 2: off the lane path, the
            // reference chain order per pixel.
            for (j, o) in interior.iter_mut().enumerate() {
                let x = j * s;
                *o = bv
                    + r0[x] * filt[0]
                    + r0[x + 1] * filt[1]
                    + r0[x + 2] * filt[2]
                    + r1[x] * filt[3]
                    + r1[x + 1] * filt[4]
                    + r1[x + 2] * filt[5]
                    + r2[x] * filt[6]
                    + r2[x + 1] * filt[7]
                    + r2[x + 2] * filt[8];
            }
        } else {
            // Generic kernel edge, still branch-free: every tap is in
            // bounds, so the `(ky, kx)` loops carry no checks.
            for (j, o) in interior.iter_mut().enumerate() {
                let x0 = ix0 + j * s;
                let mut acc = bv;
                for ky in 0..k {
                    let row = &chan_in[(iy0 + ky) * is.w + x0..(iy0 + ky) * is.w + x0 + k];
                    let frow = &filt[ky * k..ky * k + k];
                    for (&iv, &fv) in row.iter().zip(frow) {
                        acc += iv * fv;
                    }
                }
                *o = acc;
            }
        }
        dw_fwd_border(out_row, chan_in, filt, bv, oy, x_hi..os.w, is, k, s, p);
    }
}

/// Depth-wise convolution.
///
/// `weight` has shape `[c, 1, k, k]`; `bias`, when given, has `c` entries.
///
/// Results are deterministic on every `SKYNET_SIMD` backend and thread
/// count. For `k = 3`, strides 1–2 (the SkyNet geometries) the interior
/// uses the lane kernel's balanced accumulation tree, which differs from
/// [`reference::dwconv2d_ref`] by rounding only; every other geometry
/// replays the reference's exact f32 operation sequence bitwise.
///
/// # Errors
///
/// Returns a [`TensorError`] when the weight shape disagrees with the
/// input channel count or geometry, or when the bias length is wrong.
pub fn dwconv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
) -> Result<Tensor> {
    let is = input.shape();
    check(is, weight.shape(), geo)?;
    if let Some(b) = bias {
        if b.len() != is.c {
            return Err(TensorError::ShapeMismatch {
                op: "dwconv2d bias",
                expected: format!("{} entries", is.c),
                got: format!("{} entries", b.len()),
            });
        }
    }
    let os = geo.out_shape(is, is.c);
    let mut out = Tensor::zeros(os);
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let kk = k * k;
    let be = simd::active();
    let _span = telemetry::span("tensor.dwconv_fwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.dwconv.fwd_calls").inc();
        telemetry::counter("tensor.dwconv.fwd_flops").add(2 * (os.numel() * kk) as u64);
        if k == 3 && (s == 1 || s == 2) {
            let (y_lo, y_hi) = interior_range(os.h, is.h, k, s, p);
            let (x_lo, x_hi) = interior_range(os.w, is.w, k, s, p);
            let rows = y_hi.saturating_sub(y_lo);
            let m8 = simd::vector_cover(x_hi.saturating_sub(x_lo));
            simd::record_lanes("dwconv_fwd", is.n * is.c * rows * m8);
        }
    }
    // Every (item, channel) plane is independent: one parallel task per
    // output plane, each reading only its own input plane and filter.
    par_chunks_mut(out.as_mut_slice(), os.plane(), |plane, chan_out| {
        let c = plane % is.c;
        let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
        let bv = bias.map(|b| b[c]).unwrap_or(0.0);
        let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
        dw_plane_fwd(be, chan_out, chan_in, filt, bv, is, os, k, s, p);
    });
    Ok(out)
}

/// Gradients produced by [`dwconv2d_backward`].
#[derive(Debug, Clone)]
pub struct DwConvGrads {
    /// Gradient w.r.t. the input feature map.
    pub input: Tensor,
    /// Gradient w.r.t. the `[c, 1, k, k]` weight tensor.
    pub weight: Tensor,
    /// Gradient w.r.t. the per-channel bias.
    pub bias: Vec<f32>,
}

/// Border path of the backward pass: the original generic per-pixel
/// scatter over an `ox` range. `k = 3` takes a specialized body with the
/// same tap order (valid window computed once per pixel, bits unchanged).
#[allow(clippy::too_many_arguments)]
#[inline]
fn dw_bwd_border(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go_row: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    oy: usize,
    ox_range: std::ops::Range<usize>,
    is: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let iy0 = (oy * s) as isize - p as isize;
    if k == 3 {
        let ky_lo = (-iy0).max(0) as usize;
        let ky_hi = (is.h as isize - iy0).clamp(0, 3) as usize;
        for ox in ox_range {
            let g = go_row[ox];
            if g == 0.0 {
                continue;
            }
            *gb += g;
            let ix0 = (ox * s) as isize - p as isize;
            let kx_lo = (-ix0).max(0) as usize;
            let kx_hi = (is.w as isize - ix0).clamp(0, 3) as usize;
            for ky in ky_lo..ky_hi {
                let row = (iy0 + ky as isize) as usize * is.w;
                let base = row.wrapping_add_signed(ix0 + kx_lo as isize);
                let frow = ky * 3 + kx_lo;
                for t in 0..kx_hi.saturating_sub(kx_lo) {
                    let ii = base + t;
                    gw_c[frow + t] += g * chan_in[ii];
                    gi_c[ii] += g * filt[frow + t];
                }
            }
        }
        return;
    }
    for ox in ox_range {
        let ix0 = (ox * s) as isize - p as isize;
        let g = go_row[ox];
        if g == 0.0 {
            continue;
        }
        *gb += g;
        for ky in 0..k {
            let iy = iy0 + ky as isize;
            if iy < 0 || iy >= is.h as isize {
                continue;
            }
            let row = iy as usize * is.w;
            let frow = ky * k;
            for kx in 0..k {
                let ix = ix0 + kx as isize;
                if ix >= 0 && ix < is.w as isize {
                    let ii = row + ix as usize;
                    gw_c[frow + kx] += g * chan_in[ii];
                    gi_c[ii] += g * filt[frow + kx];
                }
            }
        }
    }
}

/// Scalar interior backward pixels for `k = 3`: the fully unrolled
/// scatter, visiting outputs `ox_range` in raster order with the
/// reference's `g == 0` skip and `(ky, kx)` tap order. Shared by the
/// scalar plane kernel (whole interior) and the vector plane kernel
/// (tail pixels after the 8-lane blocks).
#[allow(clippy::too_many_arguments)]
#[inline]
fn dw3_bwd_pixels(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go_row: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    iy0: usize,
    ox_range: std::ops::Range<usize>,
    is: Shape,
    s: usize,
    p: usize,
) {
    if ox_range.is_empty() {
        return;
    }
    // Three disjoint gradient rows, borrowed mutably at once so
    // the nine scatter targets resolve without re-slicing.
    let (f00, f01, f02) = (filt[0], filt[1], filt[2]);
    let (f10, f11, f12) = (filt[3], filt[4], filt[5]);
    let (f20, f21, f22) = (filt[6], filt[7], filt[8]);
    let (g0, rest) = gi_c[iy0 * is.w..].split_at_mut(is.w);
    let (g1, rest) = rest.split_at_mut(is.w);
    let g2 = &mut rest[..is.w];
    let r0 = &chan_in[iy0 * is.w..(iy0 + 1) * is.w];
    let r1 = &chan_in[(iy0 + 1) * is.w..(iy0 + 2) * is.w];
    let r2 = &chan_in[(iy0 + 2) * is.w..(iy0 + 3) * is.w];
    for ox in ox_range {
        let g = go_row[ox];
        if g == 0.0 {
            continue;
        }
        *gb += g;
        let x = ox * s - p;
        gw_c[0] += g * r0[x];
        g0[x] += g * f00;
        gw_c[1] += g * r0[x + 1];
        g0[x + 1] += g * f01;
        gw_c[2] += g * r0[x + 2];
        g0[x + 2] += g * f02;
        gw_c[3] += g * r1[x];
        g1[x] += g * f10;
        gw_c[4] += g * r1[x + 1];
        g1[x + 1] += g * f11;
        gw_c[5] += g * r1[x + 2];
        g1[x + 2] += g * f12;
        gw_c[6] += g * r2[x];
        g2[x] += g * f20;
        gw_c[7] += g * r2[x + 1];
        g2[x + 1] += g * f21;
        gw_c[8] += g * r2[x + 2];
        g2[x + 2] += g * f22;
    }
}

/// Backward pass over one plane. The interior fast path visits pixels in
/// the same raster order and taps in the same `(ky, kx)` order as the
/// border/reference code, so every accumulator (`gi`, `gw`, `gb`) sees
/// the identical f32 addition sequence.
#[allow(clippy::too_many_arguments)]
fn dw_plane_bwd(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    is: Shape,
    os: Shape,
    k: usize,
    s: usize,
    p: usize,
) {
    let (y_lo, y_hi) = interior_range(os.h, is.h, k, s, p);
    let (x_lo, x_hi) = interior_range(os.w, is.w, k, s, p);
    let unroll3 = k == 3;
    for oy in 0..os.h {
        let go_row = &go[oy * os.w..(oy + 1) * os.w];
        if oy < y_lo || oy >= y_hi || x_lo >= x_hi {
            dw_bwd_border(
                gi_c,
                gw_c,
                gb,
                go_row,
                chan_in,
                filt,
                oy,
                0..os.w,
                is,
                k,
                s,
                p,
            );
            continue;
        }
        dw_bwd_border(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            oy,
            0..x_lo,
            is,
            k,
            s,
            p,
        );
        let iy0 = oy * s - p;
        if unroll3 {
            dw3_bwd_pixels(
                gi_c,
                gw_c,
                gb,
                go_row,
                chan_in,
                filt,
                iy0,
                x_lo..x_hi,
                is,
                s,
                p,
            );
        } else {
            for (i, &g) in go_row[x_lo..x_hi].iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                *gb += g;
                let x0 = (x_lo + i) * s - p;
                for ky in 0..k {
                    let base = (iy0 + ky) * is.w + x0;
                    let frow = ky * k;
                    for kx in 0..k {
                        gw_c[frow + kx] += g * chan_in[base + kx];
                        gi_c[base + kx] += g * filt[frow + kx];
                    }
                }
            }
        }
        dw_bwd_border(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            oy,
            x_hi..os.w,
            is,
            k,
            s,
            p,
        );
    }
}

/// Lane-ordered backward plane for `k = 3`, stride `S ∈ {1, 2}`.
///
/// Two streams, in a fixed order every backend replays exactly:
///
/// * **scalar stream** — border pixels and the interior tail
///   (`m % 8` pixels per row) run the original unrolled scatter in
///   raster order, with the reference's `g == 0` skip, accumulating
///   straight into `gw_c`/`gb`;
/// * **vector stream** — full 8-pixel interior blocks accumulate into
///   8-lane accumulators (`vgw`/`vgb`) in block order with **no**
///   value-dependent skips (a skip taken on one lane but not another
///   would make the addition order data-dependent), folded once at
///   plane end through the fixed `reduce_add` tree. The fold only runs
///   when at least one full block executed, so border-only planes keep
///   the exact scalar result.
///
/// The input gradient (`gi`) has no cross-pixel reduction at stride 1:
/// each interior row runs nine tap-major passes of disjoint 8-wide
/// load/add/stores (see the comment in the body for why block-major
/// stalls), so a `gi` slot sums its up-to-nine tap contributions in
/// fixed `(ky, kx)` order. At stride 2 it is scattered scalar-per-lane
/// from bitwise-identical vector products in the original block order.
/// Both schedules are fixed, so `gi` is deterministic on every backend
/// too.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn dw3_plane_bwd_v<V: F32x8, const S: usize>(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    is: Shape,
    os: Shape,
    p: usize,
) {
    let (y_lo, y_hi) = interior_range(os.h, is.h, 3, S, p);
    let (x_lo, x_hi) = interior_range(os.w, is.w, 3, S, p);
    let m8 = simd::vector_cover(x_hi.saturating_sub(x_lo));
    // One bounds proof for the unchecked block loop below, restating the
    // `interior_range` invariant: every interior tap `(oy*S - p + ky,
    // ox*S - p + kx)` lies inside the input plane, and the widest vector
    // access (8 contiguous slots at stride 1, 15 at stride 2) ends at
    // the tap of the row's last interior pixel.
    if y_lo < y_hi && m8 > 0 {
        assert!(
            y_lo * S >= p
                && x_lo * S >= p
                && (y_hi - 1) * S + 3 <= is.h + p
                && (x_hi - 1) * S + 3 <= is.w + p
                && go.len() >= os.h * os.w
                && chan_in.len() >= is.h * is.w
                && gi_c.len() >= is.h * is.w,
            "interior range inconsistent with plane bounds"
        );
    }
    let fv: [V; 9] = std::array::from_fn(|t| V::splat(filt[t]));
    let mut vgw: [V; 9] = [V::splat(0.0); 9];
    let mut vgb = V::splat(0.0);
    let mut any_block = false;
    for oy in 0..os.h {
        let go_row = &go[oy * os.w..(oy + 1) * os.w];
        if oy < y_lo || oy >= y_hi || x_lo >= x_hi {
            dw_bwd_border(
                gi_c,
                gw_c,
                gb,
                go_row,
                chan_in,
                filt,
                oy,
                0..os.w,
                is,
                3,
                S,
                p,
            );
            continue;
        }
        dw_bwd_border(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            oy,
            0..x_lo,
            is,
            3,
            S,
            p,
        );
        let iy0 = oy * S - p;
        // Fresh pointers per row: `dw_bwd_border` reborrows `gi_c`
        // mutably between rows, so pointers must not outlive a row.
        let (gop, cip, gip) = (go_row.as_ptr(), chan_in.as_ptr(), gi_c.as_mut_ptr());
        if S == 1 {
            any_block |= m8 > 0;
            // Stride 1 runs tap-major over the row: one pass per `(ky,
            // kx)` tap, each touching disjoint 8-wide `grad_in` segments
            // per step. The block-major order (all nine taps per block)
            // stalls here — consecutive taps re-load `grad_in` slots the
            // previous tap just stored, one float apart, defeating
            // store-to-load forwarding. `vgw`/`vgb` still accumulate in
            // block order, so grad_w and grad_b keep their exact bits;
            // grad_in sums in this fixed tap-major order on every
            // backend alike.
            for b in (0..m8).step_by(LANES) {
                // SAFETY: `x_lo + b + 8 <= x_lo + m8 <= x_hi <= os.w`,
                // the go_row length.
                let g = unsafe { V::load_ptr(gop.add(x_lo + b)) };
                vgb = vgb.add(g);
            }
            let x00 = x_lo - p;
            for ky in 0..3 {
                let base = (iy0 + ky) * is.w + x00;
                for kx in 0..3 {
                    let t = ky * 3 + kx;
                    let mut acc = vgw[t];
                    let fvt = fv[t];
                    for b in (0..m8).step_by(LANES) {
                        // SAFETY: the per-plane assert above proves every
                        // tap of every block (last read `base + kx + b +
                        // 7`) stays inside the `is.h * is.w` input plane,
                        // which `gi_c` mirrors; `x_lo + b + 8 <= os.w`
                        // covers the gradient row.
                        unsafe {
                            let g = V::load_ptr(gop.add(x_lo + b));
                            let xin = V::load_ptr(cip.add(base + kx + b));
                            acc = acc.add(g.mul(xin));
                            let dst = gip.add(base + kx + b);
                            V::load_ptr(dst).add(g.mul(fvt)).store_ptr(dst);
                        }
                    }
                    vgw[t] = acc;
                }
            }
        } else {
            for b in (0..m8).step_by(LANES) {
                any_block = true;
                let ox0 = x_lo + b;
                // SAFETY: `ox0 + 8 <= x_lo + m8 <= x_hi <= os.w`, the
                // go_row length.
                let g = unsafe { V::load_ptr(gop.add(ox0)) };
                vgb = vgb.add(g);
                let x0 = ox0 * S - p;
                for ky in 0..3 {
                    let base = (iy0 + ky) * is.w + x0;
                    for kx in 0..3 {
                        // SAFETY: the per-plane assert above proves every
                        // tap of every block (last stride-2 read `base +
                        // kx + 14`) stays inside the `is.h * is.w` input
                        // plane.
                        let xin = unsafe { V::load_stride2_ptr(cip.add(base + kx)) };
                        vgw[ky * 3 + kx] = vgw[ky * 3 + kx].add(g.mul(xin));
                    }
                }
                for ky in 0..3 {
                    let base = (iy0 + ky) * is.w + x0;
                    for kx in 0..3 {
                        let prod = g.mul(fv[ky * 3 + kx]);
                        // Stride-2 scatter: targets are non-contiguous, so
                        // add the (bitwise-identical) vector products one
                        // lane at a time in lane order.
                        for (j, pv) in prod.to_array().into_iter().enumerate() {
                            // SAFETY: lane `j` writes `base + kx + 2*j`,
                            // the stride-2 tap bound proved per plane.
                            unsafe { *gip.add(base + kx + 2 * j) += pv };
                        }
                    }
                }
            }
        }
        dw3_bwd_pixels(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            iy0,
            x_lo + m8..x_hi,
            is,
            S,
            p,
        );
        dw_bwd_border(
            gi_c,
            gw_c,
            gb,
            go_row,
            chan_in,
            filt,
            oy,
            x_hi..os.w,
            is,
            3,
            S,
            p,
        );
    }
    if any_block {
        for (dst, acc) in gw_c.iter_mut().zip(vgw) {
            *dst += acc.reduce_add();
        }
        *gb += vgb.reduce_add();
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dw3_plane_bwd_avx2<const S: usize>(
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    is: Shape,
    os: Shape,
    p: usize,
) {
    dw3_plane_bwd_v::<Avx2V, S>(gi_c, gw_c, gb, go, chan_in, filt, is, os, p)
}

/// Backward plane dispatch for `k = 3`, strides 1 and 2: **every**
/// backend runs the lane-ordered schedule ([`ScalarV`] replays it under
/// `Backend::Scalar`), so results are bit-identical across backends.
#[allow(clippy::too_many_arguments)]
fn dw3_bwd_dispatch<const S: usize>(
    be: Backend,
    gi_c: &mut [f32],
    gw_c: &mut [f32],
    gb: &mut f32,
    go: &[f32],
    chan_in: &[f32],
    filt: &[f32],
    is: Shape,
    os: Shape,
    p: usize,
) {
    match be {
        Backend::Scalar => {
            dw3_plane_bwd_v::<ScalarV, S>(gi_c, gw_c, gb, go, chan_in, filt, is, os, p)
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => dw3_plane_bwd_v::<Sse2V, S>(gi_c, gw_c, gb, go, chan_in, filt, is, os, p),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backends are only ever active after runtime
        // detection succeeded (`simd::active`/`simd::force` enforce it).
        Backend::Avx2 | Backend::Avx2Pair => unsafe {
            dw3_plane_bwd_avx2::<S>(gi_c, gw_c, gb, go, chan_in, filt, is, os, p)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector backends are never active off x86_64"),
    }
}

/// Backward pass of [`dwconv2d`].
///
/// For the SkyNet geometries (`k = 3`, stride 1 or 2) the interior runs
/// the **lane-ordered** schedule of `dw3_plane_bwd_v`: bit-identical
/// across SIMD backends and thread counts, but a different f32 addition
/// order from [`reference::dwconv2d_backward_ref`] (compare with a
/// tolerance, like the forward's balanced tree). All other geometries
/// keep the original scalar schedule, which *is* bitwise to the
/// reference.
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_out`'s shape disagrees with the
/// forward geometry.
pub fn dwconv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geo: ConvGeometry,
) -> Result<DwConvGrads> {
    let is = input.shape();
    check(is, weight.shape(), geo)?;
    let os = geo.out_shape(is, is.c);
    if grad_out.shape() != os {
        return Err(TensorError::ShapeMismatch {
            op: "dwconv2d_backward",
            expected: os.to_string(),
            got: grad_out.shape().to_string(),
        });
    }
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let kk = k * k;
    let mut gi = Tensor::zeros(is);
    let mut gw = Tensor::zeros(weight.shape());
    let mut gb = vec![0.0f32; is.c];
    let be = simd::active();
    let lane_path = k == 3 && (s == 1 || s == 2);
    let _span = telemetry::span("tensor.dwconv_bwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.dwconv.bwd_calls").inc();
        telemetry::counter("tensor.dwconv.bwd_flops").add(4 * (os.numel() * kk) as u64);
        if lane_path {
            let (y_lo, y_hi) = interior_range(os.h, is.h, k, s, p);
            let (x_lo, x_hi) = interior_range(os.w, is.w, k, s, p);
            let rows = y_hi.saturating_sub(y_lo);
            let m8 = simd::vector_cover(x_hi.saturating_sub(x_lo));
            simd::record_lanes("dwconv_bwd", is.n * is.c * rows * m8);
        }
    }
    // One task per (item, channel) plane: the input-gradient plane is
    // written in place and the filter/bias contribution goes to a private
    // `[grad_w | grad_b]` stripe, folded afterwards in ascending item
    // order per channel — the same order the serial loop accumulated in.
    let stripe = kk + 1;
    let mut partials = scratch::checkout_zeroed("tensor.dwconv_bwd", is.n * is.c * stripe);
    par_chunks_mut2(
        gi.as_mut_slice(),
        is.plane(),
        &mut partials,
        stripe,
        |plane, gi_c, partial| {
            let c = plane % is.c;
            let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
            let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
            let go = &grad_out.as_slice()[plane * os.plane()..(plane + 1) * os.plane()];
            let (gw_c, gb_c) = partial.split_at_mut(kk);
            if lane_path {
                if s == 1 {
                    dw3_bwd_dispatch::<1>(
                        be,
                        gi_c,
                        gw_c,
                        &mut gb_c[0],
                        go,
                        chan_in,
                        filt,
                        is,
                        os,
                        p,
                    );
                } else {
                    dw3_bwd_dispatch::<2>(
                        be,
                        gi_c,
                        gw_c,
                        &mut gb_c[0],
                        go,
                        chan_in,
                        filt,
                        is,
                        os,
                        p,
                    );
                }
            } else {
                dw_plane_bwd(gi_c, gw_c, &mut gb_c[0], go, chan_in, filt, is, os, k, s, p);
            }
        },
    );
    for n in 0..is.n {
        for c in 0..is.c {
            let partial = &partials[(n * is.c + c) * stripe..(n * is.c + c + 1) * stripe];
            for (g, &pv) in gw.as_mut_slice()[c * kk..(c + 1) * kk]
                .iter_mut()
                .zip(partial)
            {
                *g += pv;
            }
            gb[c] += partial[kk];
        }
    }
    Ok(DwConvGrads {
        input: gi,
        weight: gw,
        bias: gb,
    })
}

pub mod reference {
    //! Specification kernels: the original fully bounds-checked loops,
    //! kept verbatim (minus telemetry) as the ground truth. The
    //! specialized **forward** kernels must match them **bit for bit**;
    //! the lane-ordered **backward** schedule (`k = 3`, strides 1–2)
    //! reorders its reduction sums and is compared with a tolerance
    //! instead (it is bitwise against *itself* across SIMD backends and
    //! thread counts — see the module docs). Used by the
    //! `kernel_equivalence` proptests and the `kernel_bench` baseline;
    //! they share the production parallel decomposition so pooled runs
    //! compare like for like.

    use super::{check, DwConvGrads};
    use crate::conv::ConvGeometry;
    use crate::parallel::{par_chunks_mut, par_chunks_mut2};
    use crate::{Result, Tensor, TensorError};

    /// Generic depth-wise convolution (per-pixel bounds checks).
    ///
    /// # Errors
    ///
    /// Same contract as [`super::dwconv2d`].
    pub fn dwconv2d_ref(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&[f32]>,
        geo: ConvGeometry,
    ) -> Result<Tensor> {
        let is = input.shape();
        check(is, weight.shape(), geo)?;
        if let Some(b) = bias {
            if b.len() != is.c {
                return Err(TensorError::ShapeMismatch {
                    op: "dwconv2d bias",
                    expected: format!("{} entries", is.c),
                    got: format!("{} entries", b.len()),
                });
            }
        }
        let os = geo.out_shape(is, is.c);
        let mut out = Tensor::zeros(os);
        let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
        let kk = k * k;
        par_chunks_mut(out.as_mut_slice(), os.plane(), |plane, chan_out| {
            let c = plane % is.c;
            let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
            let bv = bias.map(|b| b[c]).unwrap_or(0.0);
            let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
            for oy in 0..os.h {
                let iy0 = (oy * s) as isize - p as isize;
                for ox in 0..os.w {
                    let ix0 = (ox * s) as isize - p as isize;
                    let mut acc = bv;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= is.h as isize {
                            continue;
                        }
                        let row = iy as usize * is.w;
                        let frow = ky * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < is.w as isize {
                                acc += chan_in[row + ix as usize] * filt[frow + kx];
                            }
                        }
                    }
                    chan_out[oy * os.w + ox] = acc;
                }
            }
        });
        Ok(out)
    }

    /// Generic backward pass (per-pixel bounds checks).
    ///
    /// # Errors
    ///
    /// Same contract as [`super::dwconv2d_backward`].
    pub fn dwconv2d_backward_ref(
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        geo: ConvGeometry,
    ) -> Result<DwConvGrads> {
        let is = input.shape();
        check(is, weight.shape(), geo)?;
        let os = geo.out_shape(is, is.c);
        if grad_out.shape() != os {
            return Err(TensorError::ShapeMismatch {
                op: "dwconv2d_backward",
                expected: os.to_string(),
                got: grad_out.shape().to_string(),
            });
        }
        let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
        let kk = k * k;
        let mut gi = Tensor::zeros(is);
        let mut gw = Tensor::zeros(weight.shape());
        let mut gb = vec![0.0f32; is.c];
        let stripe = kk + 1;
        let mut partials = vec![0.0f32; is.n * is.c * stripe];
        par_chunks_mut2(
            gi.as_mut_slice(),
            is.plane(),
            &mut partials,
            stripe,
            |plane, gi_c, partial| {
                let c = plane % is.c;
                let filt = &weight.as_slice()[c * kk..(c + 1) * kk];
                let chan_in = &input.as_slice()[plane * is.plane()..(plane + 1) * is.plane()];
                let go = &grad_out.as_slice()[plane * os.plane()..(plane + 1) * os.plane()];
                let (gw_c, gb_c) = partial.split_at_mut(kk);
                for oy in 0..os.h {
                    let iy0 = (oy * s) as isize - p as isize;
                    for ox in 0..os.w {
                        let ix0 = (ox * s) as isize - p as isize;
                        let g = go[oy * os.w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb_c[0] += g;
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= is.h as isize {
                                continue;
                            }
                            let row = iy as usize * is.w;
                            let frow = ky * k;
                            for kx in 0..k {
                                let ix = ix0 + kx as isize;
                                if ix >= 0 && ix < is.w as isize {
                                    let ii = row + ix as usize;
                                    gw_c[frow + kx] += g * chan_in[ii];
                                    gi_c[ii] += g * filt[frow + kx];
                                }
                            }
                        }
                    }
                }
            },
        );
        for n in 0..is.n {
            for c in 0..is.c {
                let partial = &partials[(n * is.c + c) * stripe..(n * is.c + c + 1) * stripe];
                for (g, &pv) in gw.as_mut_slice()[c * kk..(c + 1) * kk]
                    .iter_mut()
                    .zip(partial)
                {
                    *g += pv;
                }
                gb[c] += partial[kk];
            }
        }
        Ok(DwConvGrads {
            input: gi,
            weight: gw,
            bias: gb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, conv2d_backward};

    #[test]
    #[ignore = "manual microbenchmark: cargo test --release -- --ignored row_kernel_timing --nocapture"]
    fn row_kernel_timing() {
        fn time(label: &str, reps: usize, mut body: impl FnMut()) {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                body();
            }
            eprintln!("{label}: {:.3} ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        for w in [38usize, 318, 4096] {
            let reps = 40_000_000 / w;
            let src: Vec<f32> = (0..w + 2).map(|i| (i % 17) as f32 * 0.1).collect();
            let f: Vec<f32> = (0..9).map(|i| 0.1 * i as f32).collect();
            let mut out = vec![0.0f32; w];
            eprintln!("-- row width {w} x {reps} reps --");
            time("scalar", reps, || {
                dw3_fwd_row::<1>(std::hint::black_box(&mut out), &src, &src, &src, &f, 0.5);
            });
            time("sse2v ", reps, || {
                dw3_fwd_row_v::<Sse2V, 1>(
                    std::hint::black_box(&mut out),
                    &src,
                    &src,
                    &src,
                    &f,
                    0.5,
                );
            });
            time("avx2v ", reps, || unsafe {
                dw3_fwd_row_avx2::<1>(std::hint::black_box(&mut out), &src, &src, &src, &f, 0.5);
            });
        }
    }

    fn filled(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        Tensor::from_vec(shape, (0..shape.numel()).map(f).collect()).unwrap()
    }

    /// A depth-wise conv equals a dense conv whose weight is block-diagonal
    /// across channels. We use that identity as the reference.
    fn as_dense_weight(dw: &Tensor, c: usize, k: usize) -> Tensor {
        let mut dense = Tensor::zeros(Shape::new(c, c, k, k));
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    *dense.at_mut(ch, ch, ky, kx) = dw.at(ch, 0, ky, kx);
                }
            }
        }
        dense
    }

    #[test]
    fn interior_range_cases() {
        // 3x3 stride 1 pad 1 over width 8: out 8, interior 1..7.
        assert_eq!(interior_range(8, 8, 3, 1, 1), (1, 7));
        // No padding: every position is interior.
        assert_eq!(interior_range(6, 8, 3, 1, 0), (0, 6));
        // Stride 2 pad 1 over width 7: out 4; ox=0 touches ix -1, ox=3
        // touches ix 7 (out of range): interior 1..3.
        assert_eq!(interior_range(4, 7, 3, 2, 1), (1, 3));
        // Kernel wider than input: empty interior.
        let (lo, hi) = interior_range(1, 2, 3, 1, 1);
        assert!(lo >= hi, "interior must be empty, got {lo}..{hi}");
        assert_eq!(interior_range(2, 1, 3, 1, 1), (0, 0));
        // 1x1 kernel, no pad: all interior.
        assert_eq!(interior_range(5, 5, 1, 1, 0), (0, 5));
    }

    #[test]
    fn forward_matches_dense_blockdiag() {
        let geo = ConvGeometry::same3x3();
        let c = 4;
        let x = filled(Shape::new(2, c, 5, 6), |i| ((i % 10) as f32 - 4.5) * 0.1);
        let w = filled(Shape::new(c, 1, 3, 3), |i| ((i % 7) as f32 - 3.0) * 0.2);
        let b: Vec<f32> = (0..c).map(|i| i as f32 * 0.1).collect();
        let got = dwconv2d(&x, &w, Some(&b), geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d(&x, &dense, Some(&b), geo).unwrap();
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn strided_forward_matches_dense() {
        let geo = ConvGeometry::new(3, 2, 1);
        let c = 3;
        let x = filled(Shape::new(1, c, 7, 8), |i| (i as f32 * 0.37).sin());
        let w = filled(Shape::new(c, 1, 3, 3), |i| (i as f32 * 0.11).cos());
        let got = dwconv2d(&x, &w, None, geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d(&x, &dense, None, geo).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (&av, &bv)) in a.iter().zip(b).enumerate() {
            assert!(
                (av - bv).abs() <= 1e-3 * bv.abs().max(1.0),
                "{what}[{i}]: {av} vs {bv}"
            );
        }
    }

    #[test]
    fn specialized_forward_and_backward_close_to_reference() {
        // The proptest suite covers random geometries; this pins the two
        // SkyNet geometries (3x3 s1 p1, 3x3 s2 p1) plus a pad-heavy one.
        // Both directions run the lane-ordered schedule on these
        // geometries (the forward uses the balanced accumulation tree,
        // the backward reorders its reduction sums), so both get a
        // tolerance against the chain-ordered reference.
        for (s, p, h, w) in [(1, 1, 9, 12), (2, 1, 9, 12), (1, 2, 5, 5)] {
            let geo = ConvGeometry::new(3, s, p);
            let c = 3;
            let x = filled(Shape::new(2, c, h, w), |i| ((i % 17) as f32 - 8.0) * 0.13);
            let wt = filled(Shape::new(c, 1, 3, 3), |i| ((i % 5) as f32 - 2.0) * 0.4);
            let b: Vec<f32> = (0..c).map(|i| i as f32 * 0.3 - 0.2).collect();
            let got = dwconv2d(&x, &wt, Some(&b), geo).unwrap();
            let want = reference::dwconv2d_ref(&x, &wt, Some(&b), geo).unwrap();
            assert_close(got.as_slice(), want.as_slice(), "fwd");
            let go = filled(got.shape(), |i| ((i % 7) as f32 - 3.0) * 0.21);
            let ga = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
            let gr = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
            assert_close(ga.input.as_slice(), gr.input.as_slice(), "grad_in");
            assert_close(ga.weight.as_slice(), gr.weight.as_slice(), "grad_w");
            assert_close(&ga.bias, &gr.bias, "grad_b");
        }
    }

    #[test]
    fn backward_matches_dense_blockdiag() {
        let geo = ConvGeometry::same3x3();
        let c = 3;
        let x = filled(Shape::new(1, c, 4, 5), |i| ((i % 8) as f32 - 3.5) * 0.15);
        let w = filled(Shape::new(c, 1, 3, 3), |i| ((i % 5) as f32 - 2.0) * 0.1);
        let out = dwconv2d(&x, &w, None, geo).unwrap();
        let go = filled(out.shape(), |i| ((i % 4) as f32 - 1.5) * 0.2);

        let got = dwconv2d_backward(&x, &w, &go, geo).unwrap();
        let dense = as_dense_weight(&w, c, 3);
        let want = conv2d_backward(&x, &dense, &go, geo).unwrap();

        for (a, e) in got.input.as_slice().iter().zip(want.input.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
        // Dense weight grad on the diagonal blocks must equal the dw grad.
        for ch in 0..c {
            for ky in 0..3 {
                for kx in 0..3 {
                    let a = got.weight.at(ch, 0, ky, kx);
                    let e = want.weight.at(ch, ch, ky, kx);
                    assert!((a - e).abs() < 1e-4);
                }
            }
        }
        for (a, e) in got.bias.iter().zip(&want.bias) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_weight() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(4, 1, 3, 3));
        assert!(dwconv2d(&x, &w, None, ConvGeometry::same3x3()).is_err());
    }
}
