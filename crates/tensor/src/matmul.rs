//! Blocked single-precision matrix multiplication.
//!
//! This is the compute core behind standard and point-wise convolutions
//! (via [`im2col`](crate::conv)). The kernel is a cache-blocked ikj loop
//! whose inner axpy update runs 8 lanes at a time through the
//! [`crate::simd`] abstraction (the only unsafe in this module is
//! the `target_feature` wrapper that instantiates the AVX2 backend after
//! runtime detection). The axpy is lane-independent — every output
//! element sees the same `c += a·b` chain on every backend — so results
//! are **bit-identical** across `SKYNET_SIMD` backends, thread counts,
//! and the pre-SIMD scalar kernel. It is not BLAS, but it is fast enough
//! to train the scaled-down models used throughout the evaluation.

use crate::parallel::par_chunks_mut;
use crate::simd::{self, Backend, F32x8, ScalarV, LANES};
use crate::{scratch, telemetry};

#[cfg(target_arch = "x86_64")]
use crate::simd::{Avx2V, Sse2V};

/// Tile edge used for cache blocking. 64 f32 = 256 B per row tile, which
/// keeps three tiles comfortably inside L1 for the sizes we use.
const BLOCK: usize = 64;

/// Minimum i-block height before a `b` tile is packed into scratch. A
/// packed tile costs one `BLOCK²` copy and saves an `n`-pitch stride on
/// every one of the i-block's row passes, so it amortizes once the block
/// is at least one vector-register's worth of rows per cache-line-sized
/// tile row — `BLOCK / LANES` (8 with a 64-wide block and 8 lanes). The
/// `pack_threshold_is_neutral` test pins the boundary shapes.
const PACK_MIN_ROWS: usize = BLOCK / LANES;

/// Computes `c += a * b` where `a` is `m×k`, `b` is `k×n` and `c` is `m×n`,
/// all dense row-major.
///
/// Output rows are distributed over the [`parallel`](crate::parallel)
/// pool in fixed `BLOCK`-row stripes; each element's dot product is
/// computed identically regardless of the stripe split or thread count,
/// so results stay bit-identical. When called from inside another
/// parallel region (e.g. a per-batch-item convolution task) the stripes
/// run inline.
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "rhs too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "out too short: {} < {}", c.len(), m * n);
    if m * n == 0 {
        return;
    }
    let be = simd::active();
    let _span = telemetry::span("tensor.matmul");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.matmul.calls").inc();
        telemetry::counter("tensor.matmul.flops").add(2 * (m * k * n) as u64);
        // Nominal lane count: full j-blocks are all-vector (BLOCK is a
        // multiple of LANES) plus the vector cover of the last partial
        // block; the `a == 0` skip is not deducted.
        let cover = n / BLOCK * BLOCK + simd::vector_cover(n % BLOCK);
        simd::record_lanes("matmul", m * k * cover);
    }
    par_chunks_mut(&mut c[..m * n], BLOCK * n, |stripe, c_rows| {
        let i0 = stripe * BLOCK;
        matmul_acc_rows(be, &a[i0 * k..], b, c_rows, c_rows.len() / n, k, n);
    });
}

/// 8-lane axpy: `c[j] += av · b[j]`, scalar tail. Lane-independent, so
/// every backend reproduces the scalar `c + (a·b)` rounding per element.
#[inline(always)]
fn axpy_v<V: F32x8>(c: &mut [f32], av: f32, b: &[f32]) {
    let avv = V::splat(av);
    let n8 = simd::vector_cover(c.len());
    for j in (0..n8).step_by(LANES) {
        let dst = &mut c[j..];
        V::load(dst).add(avv.mul(V::load(&b[j..]))).store(dst);
    }
    for (cv, &bv) in c[n8..].iter_mut().zip(&b[n8..]) {
        *cv += av * bv;
    }
}

/// Serial row-stripe body of [`matmul_acc`], generic over the SIMD
/// backend.
///
/// When an i-block is tall enough to amortize the copy, the current
/// `b` tile is packed contiguously into a scratch-arena buffer before
/// the multiply: the packed tile is read once per output row instead of
/// striding through `b` with an `n`-element row pitch. The packed path
/// reads the **same values in the same order** as the direct path, so
/// results are bit-identical either way.
#[inline(always)]
fn matmul_acc_rows_g<V: F32x8>(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let mut tile: Option<scratch::ScratchBuf> = None;
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        // Packing pays off only when the tile is reused across enough
        // rows and `b`'s rows are actually strided (several j-blocks).
        let pack = i1 - i0 >= PACK_MIN_ROWS && n > BLOCK;
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                let tw = j1 - j0;
                if pack {
                    let buf = tile
                        .get_or_insert_with(|| scratch::checkout("tensor.matmul", BLOCK * BLOCK));
                    for (dst, p) in buf.chunks_mut(tw).zip(p0..p1) {
                        dst[..tw].copy_from_slice(&b[p * n + j0..p * n + j1]);
                    }
                }
                let tslice: Option<&[f32]> = if pack { tile.as_deref() } else { None };
                for i in i0..i1 {
                    let arow = &a[i * k..i * k + k];
                    let crow = &mut c[i * n + j0..i * n + j1];
                    for p in p0..p1 {
                        let av = arow[p];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = if let Some(t) = tslice {
                            &t[(p - p0) * tw..(p - p0) * tw + tw]
                        } else {
                            &b[p * n + j0..p * n + j1]
                        };
                        axpy_v::<V>(crow, av, brow);
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_acc_rows_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_acc_rows_g::<Avx2V>(a, b, c, m, k, n)
}

/// Dispatches [`matmul_acc_rows_g`] over the given backend. All
/// backends — including the scalar one — run the same generic skeleton,
/// which is bit-identical to the pre-SIMD scalar kernel because the
/// axpy is lane-independent.
fn matmul_acc_rows(be: Backend, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match be {
        Backend::Scalar => matmul_acc_rows_g::<ScalarV>(a, b, c, m, k, n),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => matmul_acc_rows_g::<Sse2V>(a, b, c, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backends are only ever active after runtime
        // detection succeeded (`simd::active`/`simd::force` enforce it).
        Backend::Avx2 | Backend::Avx2Pair => unsafe { matmul_acc_rows_avx2(a, b, c, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector backends are never active off x86_64"),
    }
}

/// Computes `c = a * b` (overwriting `c`) with the same conventions as
/// [`matmul_acc`].
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c[..m * n].fill(0.0);
    matmul_acc(a, b, c, m, k, n);
}

#[inline(always)]
fn at_b_g<V: F32x8>(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        let arow = &a[p * m..p * m + m];
        let brow = &b[p * n..p * n + n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy_v::<V>(&mut c[i * n..i * n + n], av, brow);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn at_b_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    at_b_g::<Avx2V>(a, b, c, m, k, n)
}

/// Computes `c += aᵀ * b` where `a` is `k×m` (so `aᵀ` is `m×k`), `b` is
/// `k×n`, `c` is `m×n`. Used by the convolution weight-gradient pass.
/// Same axpy structure (and the same bit-identity argument) as
/// [`matmul_acc`].
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= k * m, "lhs too short");
    assert!(b.len() >= k * n, "rhs too short");
    assert!(c.len() >= m * n, "out too short");
    let be = simd::active();
    let _span = telemetry::span("tensor.matmul_at_b");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.matmul.calls").inc();
        telemetry::counter("tensor.matmul.flops").add(2 * (m * k * n) as u64);
        simd::record_lanes("matmul", m * k * simd::vector_cover(n));
    }
    match be {
        Backend::Scalar => at_b_g::<ScalarV>(a, b, c, m, k, n),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => at_b_g::<Sse2V>(a, b, c, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backends are only ever active after runtime
        // detection succeeded (`simd::active`/`simd::force` enforce it).
        Backend::Avx2 | Backend::Avx2Pair => unsafe { at_b_avx2(a, b, c, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector backends are never active off x86_64"),
    }
}

/// Computes `c += a * bᵀ` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
/// Used by the convolution input-gradient pass.
///
/// Deliberately **not** lane-parallel: its inner loop is a dot-product
/// *reduction* over `k`, so vectorizing it would reorder f32 additions
/// and change results — the opposite trade from the axpy kernels, which
/// vectorize for free. It stays on the original scalar chain.
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs too short");
    assert!(b.len() >= n * k, "rhs too short");
    assert!(c.len() >= m * n, "out too short");
    if m * n == 0 {
        return;
    }
    let _span = telemetry::span("tensor.matmul_a_bt");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.matmul.calls").inc();
        telemetry::counter("tensor.matmul.flops").add(2 * (m * k * n) as u64);
    }
    par_chunks_mut(&mut c[..m * n], BLOCK * n, |stripe, c_rows| {
        let base = stripe * BLOCK;
        for (ri, crow) in c_rows.chunks_mut(n).enumerate() {
            let i = base + ri;
            let arow = &a[i * k..i * k + k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b[j * k..j * k + k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *cv += acc;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn seq(len: usize, mul: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 7) as f32 - 3.0) * mul).collect()
    }

    #[test]
    fn matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = seq(m * k, 0.5);
        let b = seq(k * n, 1.5);
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        assert_eq!(c, naive(&a, &b, m, k, n));
    }

    #[test]
    fn matches_naive_block_boundary() {
        // Dimensions straddling the 64-wide block.
        let (m, k, n) = (65, 70, 67);
        let a = seq(m * k, 0.01);
        let b = seq(k * n, 0.02);
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        matmul_acc(&a, &b, &mut c, m, k, n);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn pack_threshold_is_neutral() {
        // The B-tile packing cutoff (`PACK_MIN_ROWS = BLOCK / LANES`,
        // `n > BLOCK`) is a pure performance decision: results must be
        // bitwise the same on either side of it. Row-by-row m=1 calls
        // never pack (1 < PACK_MIN_ROWS), so comparing them against one
        // full call pins the boundary shapes.
        assert_eq!(PACK_MIN_ROWS, BLOCK / LANES);
        let k = 9;
        for m in [PACK_MIN_ROWS - 1, PACK_MIN_ROWS, PACK_MIN_ROWS + 1] {
            for n in [BLOCK - 1, BLOCK, BLOCK + 1, BLOCK + 2] {
                let a = seq(m * k, 0.05);
                let b = seq(k * n, 0.07);
                let mut whole = vec![0.0; m * n];
                matmul_acc(&a, &b, &mut whole, m, k, n);
                let mut rowwise = vec![0.0; m * n];
                for i in 0..m {
                    matmul_acc(&a[i * k..], &b, &mut rowwise[i * n..], 1, k, n);
                }
                let wb: Vec<u32> = whole.iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = rowwise.iter().map(|v| v.to_bits()).collect();
                assert_eq!(wb, rb, "packed/unpacked bits diverged at m={m} n={n}");
            }
        }
    }

    #[test]
    fn transpose_variants_match_naive() {
        let (m, k, n) = (4, 6, 5);
        let a = seq(m * k, 0.3); // m×k
        let b = seq(k * n, 0.7); // k×n
        let want = naive(&a, &b, m, k, n);

        // a stored transposed: k×m.
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                a_t[p * m + i] = a[i * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        matmul_at_b_acc(&a_t, &b, &mut c1, m, k, n);
        for (x, y) in c1.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }

        // b stored transposed: n×k.
        let mut b_t = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b[p * n + j];
            }
        }
        let mut c2 = vec![0.0; m * n];
        matmul_a_bt_acc(&a, &b_t, &mut c2, m, k, n);
        for (x, y) in c2.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
