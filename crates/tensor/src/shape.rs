use std::fmt;

/// A four-dimensional NCHW shape.
///
/// All tensors in this crate are dense `f32` arrays laid out in
/// batch-channel-height-width order, the layout SkyNet's hardware model
/// assumes for its buffer-size arithmetic.
///
/// ```
/// use skynet_tensor::Shape;
/// let s = Shape::new(2, 3, 8, 16);
/// assert_eq!(s.numel(), 2 * 3 * 8 * 16);
/// assert_eq!(s.index(1, 2, 7, 15), s.numel() - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Batch size.
    pub n: usize,
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape {
    /// Creates a new shape from batch, channel, height and width extents.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { n, c, h, w }
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Number of elements in a single batch item (`c * h * w`).
    pub fn item_numel(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of elements in one spatial plane (`h * w`).
    pub fn plane(&self) -> usize {
        self.h * self.w
    }

    /// Linear index of element `(n, c, h, w)` in the dense NCHW buffer.
    #[inline(always)]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns a shape identical to `self` but with a different channel
    /// count. Useful when deriving layer output shapes.
    pub fn with_c(&self, c: usize) -> Self {
        Shape { c, ..*self }
    }

    /// Returns a shape identical to `self` but with different spatial
    /// extents.
    pub fn with_hw(&self, h: usize, w: usize) -> Self {
        Shape { h, w, ..*self }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major_nchw() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), s.numel() - 1);
    }

    #[test]
    fn derived_shapes() {
        let s = Shape::new(1, 8, 10, 20);
        assert_eq!(s.with_c(16), Shape::new(1, 16, 10, 20));
        assert_eq!(s.with_hw(5, 10), Shape::new(1, 8, 5, 10));
        assert_eq!(s.plane(), 200);
        assert_eq!(s.item_numel(), 1600);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Shape::new(1, 2, 3, 4).to_string(), "[1, 2, 3, 4]");
    }
}
