//! Standard (dense) 2-D convolution, forward and backward.
//!
//! The implementation lowers each batch item to a column matrix
//! ([`im2col`]) and multiplies it against the `[out_c, in_c·k·k]` weight
//! matrix with the blocked kernel from [`matmul`](crate::matmul). The 1×1
//! stride-1 case — SkyNet's point-wise convolution — skips the lowering
//! entirely and multiplies against the raw feature map, which is exactly
//! the data movement the paper's PW-Conv IP performs on the FPGA.

use crate::matmul::{matmul_a_bt_acc, matmul_acc, matmul_at_b_acc};
use crate::parallel::{par_chunks_mut, par_chunks_mut2};
use crate::{scratch, telemetry};
use crate::{Result, Shape, Tensor, TensorError};

/// Output rows (out-channels) per parallel task when a convolution is
/// split inside a single batch item. Fixed — never derived from the
/// thread count — so the task decomposition, and therefore the result
/// bits, are identical for every `SKYNET_THREADS`.
const OC_BLOCK: usize = 16;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Square kernel edge.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on every edge.
    pub pad: usize,
}

impl ConvGeometry {
    /// Creates a geometry.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        ConvGeometry {
            kernel,
            stride,
            pad,
        }
    }

    /// Geometry of a 1×1 point-wise convolution.
    pub fn pointwise() -> Self {
        ConvGeometry::new(1, 1, 0)
    }

    /// Geometry of a 3×3 same-padding convolution.
    pub fn same3x3() -> Self {
        ConvGeometry::new(3, 1, 1)
    }

    /// Output spatial extent for an input extent.
    ///
    /// Returns 0 for degenerate geometries — a zero-sized kernel, or a
    /// kernel larger than the padded input — rather than pretending a
    /// 1-element output exists.
    pub fn out_extent(&self, len: usize) -> usize {
        let padded = len + 2 * self.pad;
        if self.kernel == 0 || self.stride == 0 || padded < self.kernel {
            return 0;
        }
        (padded - self.kernel) / self.stride + 1
    }

    /// Output shape for a given input shape and output channel count.
    pub fn out_shape(&self, input: Shape, out_c: usize) -> Shape {
        Shape::new(
            input.n,
            out_c,
            self.out_extent(input.h),
            self.out_extent(input.w),
        )
    }
}

impl Default for ConvGeometry {
    fn default() -> Self {
        ConvGeometry::same3x3()
    }
}

/// Lowers one batch item to a `[in_c·k·k, out_h·out_w]` column matrix.
///
/// `input` must be a single batch item's channel data (`c*h*w` values).
pub fn im2col(input: &[f32], c: usize, h: usize, w: usize, geo: ConvGeometry, out: &mut [f32]) {
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let oh = geo.out_extent(h);
    let ow = geo.out_extent(w);
    let l = oh * ow;
    debug_assert!(out.len() >= c * k * k * l);
    let mut row = 0usize;
    for ci in 0..c {
        let chan = &input[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let dst = &mut out[row * l..(row + 1) * l];
                row += 1;
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy >= h as isize {
                        dst[idx..idx + ow].fill(0.0);
                        idx += ow;
                        continue;
                    }
                    let base = iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * s + kx) as isize - p as isize;
                        dst[idx] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            chan[base + ix as usize]
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Scatter-adds a column matrix back into an input-gradient buffer: the
/// adjoint of [`im2col`].
pub fn col2im_acc(col: &[f32], c: usize, h: usize, w: usize, geo: ConvGeometry, out: &mut [f32]) {
    let (k, s, p) = (geo.kernel, geo.stride, geo.pad);
    let oh = geo.out_extent(h);
    let ow = geo.out_extent(w);
    let l = oh * ow;
    let mut row = 0usize;
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let src = &col[row * l..(row + 1) * l];
                row += 1;
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - p as isize;
                    if iy < 0 || iy >= h as isize {
                        idx += ow;
                        continue;
                    }
                    let base = ci * h * w + iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * s + kx) as isize - p as isize;
                        if ix >= 0 && ix < w as isize {
                            out[base + ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
}

fn check_weight(input: Shape, weight: Shape, geo: ConvGeometry) -> Result<()> {
    if weight.c != input.c || weight.h != geo.kernel || weight.w != geo.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            expected: format!(
                "weight [out_c, {}, {}, {}]",
                input.c, geo.kernel, geo.kernel
            ),
            got: weight.to_string(),
        });
    }
    check_geometry(input, geo, "conv2d")
}

/// Rejects geometries whose output would be empty (kernel or stride of
/// zero, or a kernel exceeding the padded input).
pub(crate) fn check_geometry(input: Shape, geo: ConvGeometry, op: &'static str) -> Result<()> {
    if geo.out_extent(input.h) == 0 || geo.out_extent(input.w) == 0 {
        return Err(TensorError::InvalidDimension {
            op,
            detail: format!(
                "degenerate geometry: kernel {}, stride {}, pad {} over {}×{} input yields an empty output",
                geo.kernel, geo.stride, geo.pad, input.h, input.w
            ),
        });
    }
    Ok(())
}

/// Dense 2-D convolution.
///
/// `weight` has shape `[out_c, in_c, k, k]` (stored in the tensor's NCHW
/// fields), `bias` — when given — has `out_c` entries.
///
/// # Errors
///
/// Returns a [`TensorError`] when the weight shape is inconsistent with the
/// input and geometry, or when the bias length differs from `out_c`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
) -> Result<Tensor> {
    let ishape = input.shape();
    let wshape = weight.shape();
    check_weight(ishape, wshape, geo)?;
    let out_c = wshape.n;
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                expected: format!("{out_c} entries"),
                got: format!("{} entries", b.len()),
            });
        }
    }
    let oshape = geo.out_shape(ishape, out_c);
    let l = oshape.plane();
    let kk = ishape.c * geo.kernel * geo.kernel;
    let mut out = Tensor::zeros(oshape);
    let pointwise = geo.kernel == 1 && geo.stride == 1 && geo.pad == 0;
    let _span = telemetry::span(if pointwise {
        "tensor.pw_fwd"
    } else {
        "tensor.conv_fwd"
    });
    if telemetry::metrics_enabled() {
        let flops = 2 * (oshape.n * out_c * kk * l) as u64;
        if pointwise {
            telemetry::counter("tensor.pw.fwd_calls").inc();
            telemetry::counter("tensor.pw.fwd_flops").add(flops);
        } else {
            telemetry::counter("tensor.conv.fwd_calls").inc();
            telemetry::counter("tensor.conv.fwd_flops").add(flops);
        }
    }

    // Multi-item batches parallelize over batch items; a single item
    // parallelizes over fixed-size out-channel blocks. Both
    // decompositions compute each output element with identical
    // floating-point operations, so results are bit-identical across
    // thread counts and across the two layouts.
    if ishape.n > 1 {
        // im2col fully overwrites its output, so a plain (non-zeroed)
        // arena checkout is safe.
        let mut col_all =
            (!pointwise).then(|| scratch::checkout("tensor.conv_fwd", ishape.n * kk * l));
        if let Some(col_all) = col_all.as_deref_mut() {
            par_chunks_mut(col_all, kk * l, |n, col| {
                let in_item =
                    &input.as_slice()[n * ishape.item_numel()..(n + 1) * ishape.item_numel()];
                im2col(in_item, ishape.c, ishape.h, ishape.w, geo, col);
            });
        }
        par_chunks_mut(out.as_mut_slice(), oshape.item_numel(), |n, out_item| {
            let rhs = if let Some(col_all) = col_all.as_deref() {
                &col_all[n * kk * l..(n + 1) * kk * l]
            } else {
                &input.as_slice()[n * ishape.item_numel()..(n + 1) * ishape.item_numel()]
            };
            matmul_acc(weight.as_slice(), rhs, out_item, out_c, kk, l);
            add_bias(out_item, bias, l);
        });
    } else {
        let in_item = input.as_slice();
        let col;
        let rhs: &[f32] = if pointwise {
            in_item
        } else {
            let mut buf = scratch::checkout("tensor.conv_fwd", kk * l);
            im2col(in_item, ishape.c, ishape.h, ishape.w, geo, &mut buf);
            col = buf;
            &col
        };
        par_chunks_mut(out.as_mut_slice(), OC_BLOCK * l, |block, out_rows| {
            let oc0 = block * OC_BLOCK;
            let rows = out_rows.len() / l;
            matmul_acc(&weight.as_slice()[oc0 * kk..], rhs, out_rows, rows, kk, l);
            add_bias(out_rows, bias.map(|b| &b[oc0..oc0 + rows]), l);
        });
    }
    Ok(out)
}

/// Adds one bias value per `l`-element output row (8-lane splat-add;
/// lane-independent, so bit-identical to the scalar loop it replaced).
fn add_bias(out_rows: &mut [f32], bias: Option<&[f32]>, l: usize) {
    if let Some(b) = bias {
        crate::simd::record_lanes(
            "bias",
            b.len().min(out_rows.len() / l.max(1)) * crate::simd::vector_cover(l),
        );
        for (row, &bv) in out_rows.chunks_mut(l).zip(b) {
            crate::simd::add_scalar_inplace(row, bv);
        }
    }
}

/// Fused point-wise store variant for the bundle executor
/// ([`crate::fused`]): multiplies a `[c2, c]` point-wise weight into a
/// `[c, l]` row tile and applies the per-channel BN+activation epilogue
/// while the `[c2, l]` output tile is still cache-resident.
///
/// Bit-identity with the unfused `conv2d` → BN-eval → activation chain
/// follows from [`matmul_acc`]'s per-element contract — each output
/// accumulates over `k` in a fixed ascending chain with the `a == 0`
/// skip, independent of the call's column count and row blocking — and
/// from [`crate::simd::bn_act_inplace`]'s position-independent per-element
/// sequence.
pub(crate) fn pw_bnact_tile(
    weight: &[f32],
    tile_in: &[f32],
    tile_out: &mut [f32],
    c2: usize,
    c: usize,
    l: usize,
    ep: &crate::fused::BnAct,
) {
    tile_out.fill(0.0);
    matmul_acc(weight, tile_in, tile_out, c2, c, l);
    for oc in 0..c2 {
        let (m, inv_std, g, b, hi) = ep.channel(oc);
        crate::simd::bn_act_inplace(&mut tile_out[oc * l..(oc + 1) * l], m, inv_std, g, b, hi);
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input feature map.
    pub input: Tensor,
    /// Gradient w.r.t. the weight tensor.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias (always computed; ignore when bias-free).
    pub bias: Vec<f32>,
}

/// Backward pass of [`conv2d`].
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_out`'s shape is inconsistent with
/// the forward geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geo: ConvGeometry,
) -> Result<ConvGrads> {
    let ishape = input.shape();
    let wshape = weight.shape();
    check_weight(ishape, wshape, geo)?;
    let out_c = wshape.n;
    let oshape = geo.out_shape(ishape, out_c);
    if grad_out.shape() != oshape {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            expected: oshape.to_string(),
            got: grad_out.shape().to_string(),
        });
    }
    let l = oshape.plane();
    let kk = ishape.c * geo.kernel * geo.kernel;
    let mut gi = Tensor::zeros(ishape);
    let mut gw = Tensor::zeros(wshape);
    let mut gb = vec![0.0f32; out_c];
    let pointwise = geo.kernel == 1 && geo.stride == 1 && geo.pad == 0;
    let _span = telemetry::span(if pointwise {
        "tensor.pw_bwd"
    } else {
        "tensor.conv_bwd"
    });
    if telemetry::metrics_enabled() {
        // Input-grad + weight-grad matmuls: ~2× the forward MACs.
        let flops = 4 * (ishape.n * out_c * kk * l) as u64;
        if pointwise {
            telemetry::counter("tensor.pw.bwd_calls").inc();
            telemetry::counter("tensor.pw.bwd_flops").add(flops);
        } else {
            telemetry::counter("tensor.conv.bwd_calls").inc();
            telemetry::counter("tensor.conv.bwd_flops").add(flops);
        }
    }

    // Batch items are independent: each task computes its item's input
    // gradient in place plus a private `[grad_w | grad_b]` partial.
    // The partials are then folded in item order on the calling thread,
    // which keeps the reduction deterministic for any thread count.
    let wlen = wshape.numel();
    let stripe = wlen + out_c;
    let mut partials = scratch::checkout_zeroed("tensor.conv_bwd", ishape.n * stripe);
    par_chunks_mut2(
        gi.as_mut_slice(),
        ishape.item_numel(),
        &mut partials,
        stripe,
        |n, gi_item, partial| {
            let (pgw, pgb) = partial.split_at_mut(wlen);
            let in_item = &input.as_slice()[n * ishape.item_numel()..(n + 1) * ishape.item_numel()];
            let go_item =
                &grad_out.as_slice()[n * oshape.item_numel()..(n + 1) * oshape.item_numel()];
            // Bias gradient: sum over spatial positions.
            for (oc, pb) in pgb.iter_mut().enumerate() {
                *pb = go_item[oc * l..(oc + 1) * l].iter().sum::<f32>();
            }
            if pointwise {
                // grad_w += go (out_c×L) · inᵀ (L×in_c)
                matmul_a_bt_acc(go_item, in_item, pgw, out_c, l, kk);
                // grad_in += wᵀ (in_c×out_c) · go (out_c×L)
                matmul_at_b_acc(weight.as_slice(), go_item, gi_item, kk, out_c, l);
            } else {
                // `col` is fully written by im2col; `gcol` is accumulated
                // into by matmul_at_b_acc, so it must come back zeroed.
                let mut col = scratch::checkout("tensor.conv_bwd", kk * l);
                im2col(in_item, ishape.c, ishape.h, ishape.w, geo, &mut col);
                matmul_a_bt_acc(go_item, &col, pgw, out_c, l, kk);
                let mut gcol = scratch::checkout_zeroed("tensor.conv_bwd", kk * l);
                matmul_at_b_acc(weight.as_slice(), go_item, &mut gcol, kk, out_c, l);
                col2im_acc(&gcol, ishape.c, ishape.h, ishape.w, geo, gi_item);
            }
        },
    );
    for partial in partials.chunks(stripe) {
        let (pgw, pgb) = partial.split_at(wlen);
        for (g, &p) in gw.as_mut_slice().iter_mut().zip(pgw) {
            *g += p;
        }
        for (g, &p) in gb.iter_mut().zip(pgb) {
            *g += p;
        }
    }
    Ok(ConvGrads {
        input: gi,
        weight: gw,
        bias: gb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&[f32]>,
        geo: ConvGeometry,
    ) -> Tensor {
        let is = input.shape();
        let ws = weight.shape();
        let os = geo.out_shape(is, ws.n);
        let mut out = Tensor::zeros(os);
        for n in 0..is.n {
            for oc in 0..ws.n {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut acc = bias.map(|b| b[oc]).unwrap_or(0.0);
                        for ic in 0..is.c {
                            for ky in 0..geo.kernel {
                                for kx in 0..geo.kernel {
                                    let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
                                    let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
                                    if iy >= 0
                                        && iy < is.h as isize
                                        && ix >= 0
                                        && ix < is.w as isize
                                    {
                                        acc += input.at(n, ic, iy as usize, ix as usize)
                                            * weight.at(oc, ic, ky, kx);
                                    }
                                }
                            }
                        }
                        *out.at_mut(n, oc, oy, ox) = acc;
                    }
                }
            }
        }
        out
    }

    fn filled(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        Tensor::from_vec(shape, (0..shape.numel()).map(f).collect()).unwrap()
    }

    #[test]
    fn forward_matches_naive_3x3() {
        let geo = ConvGeometry::same3x3();
        let x = filled(Shape::new(2, 3, 5, 6), |i| ((i % 11) as f32 - 5.0) * 0.1);
        let w = filled(Shape::new(4, 3, 3, 3), |i| ((i % 7) as f32 - 3.0) * 0.2);
        let b: Vec<f32> = vec![0.1, -0.2, 0.3, 0.0];
        let got = conv2d(&x, &w, Some(&b), geo).unwrap();
        let want = naive_conv(&x, &w, Some(&b), geo);
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4, "{a} vs {e}");
        }
    }

    #[test]
    fn forward_matches_naive_pointwise() {
        let geo = ConvGeometry::pointwise();
        let x = filled(Shape::new(1, 5, 4, 4), |i| (i as f32).sin());
        let w = filled(Shape::new(3, 5, 1, 1), |i| (i as f32).cos());
        let got = conv2d(&x, &w, None, geo).unwrap();
        let want = naive_conv(&x, &w, None, geo);
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn forward_matches_naive_strided() {
        let geo = ConvGeometry::new(3, 2, 1);
        let x = filled(Shape::new(1, 2, 7, 9), |i| ((i % 13) as f32 - 6.0) * 0.05);
        let w = filled(Shape::new(2, 2, 3, 3), |i| ((i % 5) as f32 - 2.0) * 0.3);
        let got = conv2d(&x, &w, None, geo).unwrap();
        let want = naive_conv(&x, &w, None, geo);
        assert_eq!(got.shape(), Shape::new(1, 2, 4, 5));
        for (a, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - e).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_weight_shape() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(2, 4, 3, 3)); // in_c mismatch
        assert!(conv2d(&x, &w, None, ConvGeometry::same3x3()).is_err());
    }

    /// Regression: `out_extent` used to report 1 output position when the
    /// kernel exceeded the padded input (`saturating_sub` then `+ 1`).
    #[test]
    fn degenerate_geometry_is_zero_extent_and_rejected() {
        // 7×7 kernel over an unpadded 4-wide input: no valid placement.
        let geo = ConvGeometry::new(7, 1, 0);
        assert_eq!(geo.out_extent(4), 0);
        assert_eq!(geo.out_extent(6), 0);
        assert_eq!(geo.out_extent(7), 1);
        // Zero kernel / stride never place.
        assert_eq!(ConvGeometry::new(0, 1, 0).out_extent(5), 0);
        assert_eq!(ConvGeometry::new(3, 0, 1).out_extent(5), 0);

        let x = Tensor::zeros(Shape::new(1, 2, 4, 4));
        let w = Tensor::zeros(Shape::new(3, 2, 7, 7));
        let err = conv2d(&x, &w, None, geo).unwrap_err();
        assert!(
            matches!(err, TensorError::InvalidDimension { .. }),
            "want InvalidDimension, got {err:?}"
        );
        assert!(conv2d_backward(&x, &w, &Tensor::zeros(Shape::new(1, 3, 1, 1)), geo).is_err());
    }

    /// Finite-difference check of the full backward pass.
    #[test]
    fn backward_matches_finite_difference() {
        let geo = ConvGeometry::same3x3();
        let x = filled(Shape::new(1, 2, 4, 4), |i| ((i % 9) as f32 - 4.0) * 0.1);
        let w = filled(Shape::new(2, 2, 3, 3), |i| ((i % 6) as f32 - 2.5) * 0.1);
        let b = vec![0.05, -0.05];

        // Loss = sum of outputs, so grad_out = ones.
        let out = conv2d(&x, &w, Some(&b), geo).unwrap();
        let go = Tensor::ones(out.shape());
        let grads = conv2d_backward(&x, &w, &go, geo).unwrap();

        let eps = 1e-2f32;
        // Check a handful of weight coordinates.
        for &idx in &[0usize, 5, 13, 27, 35] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&x, &wp, Some(&b), geo).unwrap().sum();
            let lm = conv2d(&x, &wm, Some(&b), geo).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.weight.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "w[{idx}]: {num} vs {ana}");
        }
        // Check a handful of input coordinates.
        for &idx in &[0usize, 7, 15, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&xp, &w, Some(&b), geo).unwrap().sum();
            let lm = conv2d(&xm, &w, Some(&b), geo).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.input.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "x[{idx}]: {num} vs {ana}");
        }
        // Bias gradient is just the number of spatial positions.
        for &g in &grads.bias {
            assert!((g - 16.0).abs() < 1e-3);
        }
    }
}
