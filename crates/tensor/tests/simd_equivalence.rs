//! The cross-ISA determinism contract: every available SIMD backend must
//! be **bit-identical** to the lane-ordered scalar oracle
//! (`SKYNET_SIMD=scalar`) on every ported kernel — DW-Conv3
//! forward/backward (strides 1 and 2), the matmul axpy kernels, and the
//! elementwise tails (ReLU/ReLU6, bias add, BN apply, SGD update) — over
//! random shapes/strides/pads, the pinned SkyNet geometries, and the
//! degenerate border-only case where `interior_range` is empty.
//!
//! Each comparison runs on the worker pool **and** under
//! [`parallel::serial`]; CI additionally runs the whole suite under
//! `SKYNET_THREADS=1` and the default pool, and under forced
//! `SKYNET_SIMD` values (where the forced backend must equal the oracle
//! that this suite computes by forcing `scalar` in-process).
//!
//! Backend forcing is process-global, so every test serializes on a
//! mutex; stray parallelism would still be *correct* (all backends agree
//! bitwise — that is the contract under test) but would blur attribution
//! when a backend diverges.

use proptest::prelude::*;
use skynet_tensor::conv::ConvGeometry;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward};
use skynet_tensor::matmul::{matmul_acc, matmul_at_b_acc};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use skynet_tensor::{parallel, Shape, Tensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = simd::active();
    simd::force(be);
    let out = f();
    simd::force(prev);
    out
}

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` under the scalar oracle and under every other available
/// backend (pooled and forced-serial), asserting all outputs bitwise
/// equal to the oracle's pooled output.
fn assert_backends_agree(label: &str, f: impl Fn() -> Vec<f32>) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let oracle = with_backend(Backend::Scalar, &f);
    let oracle_ser = with_backend(Backend::Scalar, || parallel::serial(&f));
    assert_eq!(
        bits(&oracle),
        bits(&oracle_ser),
        "{label}: scalar pooled vs serial"
    );
    for be in simd::available_backends() {
        if be == Backend::Scalar {
            continue;
        }
        let got = with_backend(be, &f);
        assert_eq!(
            bits(&oracle),
            bits(&got),
            "{label}: {} diverged from scalar oracle (pooled)",
            be.name()
        );
        let got_ser = with_backend(be, || parallel::serial(&f));
        assert_eq!(
            bits(&oracle),
            bits(&got_ser),
            "{label}: {} diverged from scalar oracle (serial)",
            be.name()
        );
    }
}

fn dwconv_case(seed: u64, n: usize, c: usize, h: usize, w: usize, s: usize, p: usize) {
    let geo = ConvGeometry::new(3, s, p);
    if geo.out_extent(h) == 0 || geo.out_extent(w) == 0 {
        return;
    }
    let mut rng = SkyRng::new(seed);
    let x = random_tensor(Shape::new(n, c, h, w), &mut rng);
    let wt = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
    let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();
    let os = geo.out_shape(x.shape(), c);
    let go = random_tensor(os, &mut rng);

    assert_backends_agree("dwconv fwd", || {
        dwconv2d(&x, &wt, Some(&b), geo)
            .unwrap()
            .as_slice()
            .to_vec()
    });
    assert_backends_agree("dwconv bwd", || {
        let g = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let mut out = g.input.as_slice().to_vec();
        out.extend_from_slice(g.weight.as_slice());
        out.extend_from_slice(&g.bias);
        out
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DW-Conv3 forward + backward across backends, random geometries
    /// (strides 1–2 hit the lane path; larger pads exercise borders).
    #[test]
    fn dwconv_backends_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..5,
        h in 2usize..12,
        w in 2usize..12,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        dwconv_case(seed, n, c, h, w, stride, pad);
    }

    /// Matmul axpy kernels across backends, shapes straddling the block
    /// and lane widths (including the zero-skip via sparse `a`).
    #[test]
    fn matmul_backends_bitwise(
        seed in 0u64..1_000_000,
        m in 1usize..18,
        k in 1usize..12,
        n in 1usize..80,
        sparse_sel in 0usize..2,
    ) {
        let sparse = sparse_sel == 1;
        let mut rng = SkyRng::new(seed);
        let a: Vec<f32> = (0..m * k)
            .map(|_| {
                let v = rng.range(-2.0, 2.0);
                if sparse && rng.range(0.0, 1.0) < 0.5 { 0.0 } else { v }
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.range(-2.0, 2.0)).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| rng.range(-1.0, 1.0)).collect();

        assert_backends_agree("matmul_acc", || {
            let mut c = c0.clone();
            matmul_acc(&a, &b, &mut c, m, k, n);
            c
        });
        // aᵀ·b with `a` reinterpreted as k×m.
        let at: Vec<f32> = (0..k * m).map(|_| rng.range(-2.0, 2.0)).collect();
        assert_backends_agree("matmul_at_b_acc", || {
            let mut c = c0.clone();
            matmul_at_b_acc(&at, &b, &mut c, m, k, n);
            c
        });
    }

    /// Elementwise kernels across backends: activations, bias add, BN
    /// apply (train + eval orders) and the SGD update, odd lengths so
    /// the scalar tails run too.
    #[test]
    fn elementwise_backends_bitwise(
        seed in 0u64..1_000_000,
        len in 1usize..100,
    ) {
        let mut rng = SkyRng::new(seed);
        let xs: Vec<f32> = (0..len).map(|_| rng.range(-8.0, 8.0)).collect();
        let (m, is, g, b) = (
            rng.range(-1.0, 1.0),
            rng.range(0.1, 2.0),
            rng.range(-2.0, 2.0),
            rng.range(-1.0, 1.0),
        );

        assert_backends_agree("relu", || {
            let mut v = xs.clone();
            simd::relu_inplace(&mut v);
            v
        });
        assert_backends_agree("relu6", || {
            let mut v = xs.clone();
            simd::relu6_inplace(&mut v);
            v
        });
        assert_backends_agree("bias", || {
            let mut v = xs.clone();
            simd::add_scalar_inplace(&mut v, b);
            v
        });
        assert_backends_agree("bn_train", || {
            let mut xh = vec![0.0; len];
            let mut y = vec![0.0; len];
            simd::bn_apply_train(&xs, &mut xh, &mut y, m, is, g, b);
            xh.extend_from_slice(&y);
            xh
        });
        assert_backends_agree("bn_eval", || {
            let mut y = vec![0.0; len];
            simd::bn_apply_eval(&xs, &mut y, m, is, g, b);
            y
        });

        let grad: Vec<f32> = (0..len)
            .map(|i| {
                if i % 13 == 7 {
                    f32::NAN
                } else if i % 17 == 3 {
                    f32::INFINITY
                } else {
                    rng.range(-3.0, 3.0)
                }
            })
            .collect();
        let vel0: Vec<f32> = (0..len).map(|_| rng.range(-1.0, 1.0)).collect();
        for clip in [None, Some(0.5)] {
            assert_backends_agree("sgd", || {
                let mut val = xs.clone();
                let mut vel = vel0.clone();
                simd::sgd_axpy_update(&mut val, &grad, &mut vel, 0.01, 0.9, 5e-4, clip);
                val.extend_from_slice(&vel);
                val
            });
        }
    }
}

/// The exact geometries SkyNet instantiates, pinned outside proptest.
#[test]
fn skynet_geometries_backends_bitwise() {
    for &(c, h, w, s) in &[
        (3usize, 40usize, 80usize, 1usize),
        (24, 20, 40, 1),
        (48, 10, 20, 2),
        (160, 5, 10, 1),
    ] {
        dwconv_case(0xD0E5 ^ (c as u64) << 8 ^ (s as u64), 1, c, h, w, s, 1);
    }
}

/// Degenerate 2×2 inputs under a 3×3 kernel with padding: the interior
/// range is empty, so only the scalar border stream runs — every backend
/// must still agree (and the vector accumulator fold must not run).
#[test]
fn empty_interior_is_border_only_and_agrees() {
    dwconv_case(0xBEEF, 1, 2, 2, 2, 1, 1);
    dwconv_case(0xBEF0, 2, 3, 2, 2, 2, 1);
    // 1-pixel-wide input: empty interior along x only.
    dwconv_case(0xBEF1, 1, 2, 8, 1, 1, 1);
}

/// `available_backends` on x86_64 always contains scalar + SSE2; the
/// forced-backend hard error fires for unavailable backends only.
#[test]
fn backend_forcing_contract() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let all = simd::available_backends();
    assert!(all.contains(&Backend::Scalar));
    #[cfg(target_arch = "x86_64")]
    assert!(all.contains(&Backend::Sse2));
    for be in all {
        with_backend(be, || assert_eq!(simd::active(), be));
    }
}
