//! Property tests of the parallel engine's determinism contract:
//! every kernel must produce **bit-identical** results on the worker
//! pool and under [`parallel::serial`] (the forced single-thread path,
//! i.e. `SKYNET_THREADS=1`), for arbitrary shapes, strides and pads —
//! and repeat runs on the pool must be bit-stable too.

use proptest::prelude::*;
use skynet_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward};
use skynet_tensor::matmul::matmul_acc;
use skynet_tensor::parallel;
use skynet_tensor::pool::{maxpool2d, maxpool2d_backward};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{Shape, Tensor};

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn vec_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// conv2d forward + backward: pool == forced-serial, bit for bit,
    /// across random batch/channel/spatial extents and geometries.
    #[test]
    fn conv_pool_matches_serial_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        in_c in 1usize..4,
        out_c in 1usize..34, // crosses the 16-channel stripe boundary
        hw in 3usize..11,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let geo = ConvGeometry::new(kernel, stride, pad);
        if geo.out_extent(hw) == 0 {
            return Ok(()); // degenerate geometry: rejected, nothing to compare
        }
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, in_c, hw, hw), &mut rng);
        let w = random_tensor(Shape::new(out_c, in_c, kernel, kernel), &mut rng);
        let b: Vec<f32> = (0..out_c).map(|_| rng.range(-1.0, 1.0)).collect();

        let y_par = conv2d(&x, &w, Some(&b), geo).unwrap();
        let y_ser = parallel::serial(|| conv2d(&x, &w, Some(&b), geo)).unwrap();
        prop_assert_eq!(bits(&y_par), bits(&y_ser));
        // Repeat run on the pool: bit-stable.
        prop_assert_eq!(bits(&conv2d(&x, &w, Some(&b), geo).unwrap()), bits(&y_par));

        let go = random_tensor(y_par.shape(), &mut rng);
        let g_par = conv2d_backward(&x, &w, &go, geo).unwrap();
        let g_ser = parallel::serial(|| conv2d_backward(&x, &w, &go, geo)).unwrap();
        prop_assert_eq!(bits(&g_par.input), bits(&g_ser.input));
        prop_assert_eq!(bits(&g_par.weight), bits(&g_ser.weight));
        prop_assert_eq!(vec_bits(&g_par.bias), vec_bits(&g_ser.bias));
    }

    /// dwconv2d forward + backward: pool == forced-serial, bit for bit.
    #[test]
    fn dwconv_pool_matches_serial_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        c in 1usize..6,
        hw in 3usize..11,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let geo = ConvGeometry::new(kernel, stride, pad);
        if geo.out_extent(hw) == 0 {
            return Ok(());
        }
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, c, hw, hw), &mut rng);
        let w = random_tensor(Shape::new(c, 1, kernel, kernel), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();

        let y_par = dwconv2d(&x, &w, Some(&b), geo).unwrap();
        let y_ser = parallel::serial(|| dwconv2d(&x, &w, Some(&b), geo)).unwrap();
        prop_assert_eq!(bits(&y_par), bits(&y_ser));

        let go = random_tensor(y_par.shape(), &mut rng);
        let g_par = dwconv2d_backward(&x, &w, &go, geo).unwrap();
        let g_ser = parallel::serial(|| dwconv2d_backward(&x, &w, &go, geo)).unwrap();
        prop_assert_eq!(bits(&g_par.input), bits(&g_ser.input));
        prop_assert_eq!(bits(&g_par.weight), bits(&g_ser.weight));
        prop_assert_eq!(vec_bits(&g_par.bias), vec_bits(&g_ser.bias));
    }

    /// maxpool2d forward + backward: pool == forced-serial, bit for bit,
    /// including the recorded argmax indices.
    #[test]
    fn maxpool_pool_matches_serial_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        c in 1usize..5,
        half in 1usize..6,
    ) {
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, c, half * 2, half * 2), &mut rng);

        let p_par = maxpool2d(&x, 2).unwrap();
        let p_ser = parallel::serial(|| maxpool2d(&x, 2)).unwrap();
        prop_assert_eq!(bits(&p_par.output), bits(&p_ser.output));
        prop_assert_eq!(&p_par.argmax, &p_ser.argmax);

        let go = random_tensor(p_par.output.shape(), &mut rng);
        let g_par = maxpool2d_backward(x.shape(), &p_par.argmax, &go).unwrap();
        let g_ser =
            parallel::serial(|| maxpool2d_backward(x.shape(), &p_par.argmax, &go)).unwrap();
        prop_assert_eq!(bits(&g_par), bits(&g_ser));
    }

    /// matmul row-striping: pool == forced-serial, bit for bit, for
    /// extents straddling the stripe width.
    #[test]
    fn matmul_pool_matches_serial_bitwise(
        seed in 0u64..1_000_000,
        m in 1usize..130, // crosses the 64-row stripe boundary
        k in 1usize..20,
        n in 1usize..20,
    ) {
        let mut rng = SkyRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.range(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.range(-2.0, 2.0)).collect();
        let mut c_par = vec![0.0f32; m * n];
        let mut c_ser = vec![0.0f32; m * n];
        matmul_acc(&a, &b, &mut c_par, m, k, n);
        parallel::serial(|| matmul_acc(&a, &b, &mut c_ser, m, k, n));
        prop_assert_eq!(vec_bits(&c_par), vec_bits(&c_ser));
    }
}
