//! Determinism contract of the telemetry layer.
//!
//! The metrics a workload emits about *deterministic quantities* (call
//! counts, FLOP totals, histograms of computed values) must be
//! bit-identical whether the kernels run on the worker pool or fully
//! inline (`parallel::serial`, equivalent to `SKYNET_THREADS=1`).
//! Scheduling metrics (`pool.*`) and wall-clock histograms are
//! explicitly outside that guarantee and are filtered out with
//! [`telemetry::Snapshot::retain`] before comparison.
//!
//! The telemetry registry and enable flags are process-global, so every
//! test here serialises on one mutex.

use skynet_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward};
use skynet_tensor::pool::{maxpool2d, maxpool2d_backward};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{parallel, telemetry, Shape, Tensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn rand_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-1.0, 1.0)).collect();
    Tensor::from_vec(shape, data).expect("rand tensor")
}

/// Fixed-seed workload exercising every instrumented kernel, plus a
/// histogram fed with computed (deterministic) output values.
fn workload() {
    let mut rng = SkyRng::new(7);
    let x = rand_tensor(Shape::new(2, 8, 16, 16), &mut rng);

    // Dense 3x3 conv, forward + backward.
    let geo = ConvGeometry::new(3, 1, 1);
    let w = rand_tensor(Shape::new(12, 8, 3, 3), &mut rng);
    let y = conv2d(&x, &w, None, geo).expect("conv fwd");
    conv2d_backward(&x, &w, &y, geo).expect("conv bwd");

    // Pointwise 1x1 conv.
    let wp = rand_tensor(Shape::new(16, 8, 1, 1), &mut rng);
    conv2d(&x, &wp, None, ConvGeometry::new(1, 1, 0)).expect("pw fwd");

    // Depthwise conv, forward + backward.
    let wd = rand_tensor(Shape::new(8, 1, 3, 3), &mut rng);
    let dgeo = ConvGeometry::new(3, 1, 1);
    let yd = dwconv2d(&x, &wd, None, dgeo).expect("dw fwd");
    dwconv2d_backward(&x, &wd, &yd, dgeo).expect("dw bwd");

    // Max-pool, forward + backward.
    let p = maxpool2d(&x, 2).expect("pool fwd");
    maxpool2d_backward(x.shape(), &p.argmax, &p.output).expect("pool bwd");

    // Histogram over computed values: deterministic outputs must yield
    // bit-identical bucket counts and sums regardless of thread count.
    if telemetry::metrics_enabled() {
        let h = telemetry::histogram("test.conv.values", &[-0.5, 0.0, 0.5, 1.0]);
        for &v in y.as_slice().iter().take(512) {
            h.record(f64::from(v));
        }
    }
}

fn deterministic_families(s: telemetry::Snapshot) -> telemetry::Snapshot {
    s.retain(|name| name.starts_with("tensor.") || name.starts_with("test."))
}

#[test]
fn metrics_identical_serial_vs_pooled() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new().metrics(true).trace(false).apply();

    telemetry::reset_metrics();
    workload(); // default pool
    let pooled = deterministic_families(telemetry::snapshot());

    telemetry::reset_metrics();
    parallel::serial(workload); // forced inline, as SKYNET_THREADS=1
    let serial = deterministic_families(telemetry::snapshot());

    assert!(
        !pooled.counters.is_empty(),
        "workload registered no tensor.* counters"
    );
    assert!(
        pooled
            .histograms
            .iter()
            .any(|h| h.name == "test.conv.values"),
        "value histogram missing"
    );
    assert_eq!(pooled, serial, "deterministic metric families diverged");

    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

#[test]
fn spans_preserve_completion_order_within_thread() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new().metrics(false).trace(true).apply();
    telemetry::drain_spans();

    workload();
    let spans = telemetry::drain_spans();
    assert!(!spans.is_empty(), "trace produced no spans");

    // Group by thread; within a thread the seq field must record strictly
    // increasing completion order, and completion times must be monotone
    // when replayed in that order.
    let mut threads: Vec<u32> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let mut per: Vec<_> = spans.iter().filter(|s| s.thread == t).collect();
        per.sort_by_key(|s| s.seq);
        for pair in per.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "duplicate seq {} on thread {t}",
                pair[0].seq
            );
            assert!(
                pair[0].end_ns() <= pair[1].end_ns(),
                "span {} (seq {}) completed after {} (seq {}) but was recorded first",
                pair[0].name,
                pair[0].seq,
                pair[1].name,
                pair[1].seq
            );
        }
    }

    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
    telemetry::reset_metrics();
    telemetry::drain_spans();

    workload();

    let snap = deterministic_families(telemetry::snapshot());
    // Counter handles may exist from earlier runs, but nothing new is
    // recorded and no spans are buffered.
    assert!(snap.counters.iter().all(|&(_, v)| v == 0));
    assert!(snap.histograms.iter().all(|h| h.count == 0));
    assert!(telemetry::drain_spans().is_empty());
}
