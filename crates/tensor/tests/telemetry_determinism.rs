//! Determinism contract of the telemetry layer.
//!
//! The metrics a workload emits about *deterministic quantities* (call
//! counts, FLOP totals, histograms of computed values) must be
//! bit-identical whether the kernels run on the worker pool or fully
//! inline (`parallel::serial`, equivalent to `SKYNET_THREADS=1`).
//! Scheduling metrics (`pool.*`) and wall-clock histograms are
//! explicitly outside that guarantee and are filtered out with
//! [`telemetry::Snapshot::retain`] before comparison.
//!
//! The telemetry registry and enable flags are process-global, so every
//! test here serialises on one mutex.

use skynet_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward};
use skynet_tensor::pool::{maxpool2d, maxpool2d_backward};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{parallel, telemetry, Shape, Tensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn rand_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-1.0, 1.0)).collect();
    Tensor::from_vec(shape, data).expect("rand tensor")
}

/// Fixed-seed workload exercising every instrumented kernel, plus a
/// histogram fed with computed (deterministic) output values.
fn workload() {
    let mut rng = SkyRng::new(7);
    let x = rand_tensor(Shape::new(2, 8, 16, 16), &mut rng);

    // Dense 3x3 conv, forward + backward.
    let geo = ConvGeometry::new(3, 1, 1);
    let w = rand_tensor(Shape::new(12, 8, 3, 3), &mut rng);
    let y = conv2d(&x, &w, None, geo).expect("conv fwd");
    conv2d_backward(&x, &w, &y, geo).expect("conv bwd");

    // Pointwise 1x1 conv.
    let wp = rand_tensor(Shape::new(16, 8, 1, 1), &mut rng);
    conv2d(&x, &wp, None, ConvGeometry::new(1, 1, 0)).expect("pw fwd");

    // Depthwise conv, forward + backward.
    let wd = rand_tensor(Shape::new(8, 1, 3, 3), &mut rng);
    let dgeo = ConvGeometry::new(3, 1, 1);
    let yd = dwconv2d(&x, &wd, None, dgeo).expect("dw fwd");
    dwconv2d_backward(&x, &wd, &yd, dgeo).expect("dw bwd");

    // Max-pool, forward + backward.
    let p = maxpool2d(&x, 2).expect("pool fwd");
    maxpool2d_backward(x.shape(), &p.argmax, &p.output).expect("pool bwd");

    // Histogram over computed values: deterministic outputs must yield
    // bit-identical bucket counts and sums regardless of thread count.
    if telemetry::metrics_enabled() {
        let h = telemetry::histogram("test.conv.values", &[-0.5, 0.0, 0.5, 1.0]);
        for &v in y.as_slice().iter().take(512) {
            h.record(f64::from(v));
        }
    }
}

fn deterministic_families(s: telemetry::Snapshot) -> telemetry::Snapshot {
    s.retain(|name| name.starts_with("tensor.") || name.starts_with("test."))
}

#[test]
fn metrics_identical_serial_vs_pooled() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new().metrics(true).trace(false).apply();

    telemetry::reset_metrics();
    workload(); // default pool
    let pooled = deterministic_families(telemetry::snapshot());

    telemetry::reset_metrics();
    parallel::serial(workload); // forced inline, as SKYNET_THREADS=1
    let serial = deterministic_families(telemetry::snapshot());

    assert!(
        !pooled.counters.is_empty(),
        "workload registered no tensor.* counters"
    );
    assert!(
        pooled
            .histograms
            .iter()
            .any(|h| h.name == "test.conv.values"),
        "value histogram missing"
    );
    assert_eq!(pooled, serial, "deterministic metric families diverged");

    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

#[test]
fn spans_preserve_completion_order_within_thread() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new().metrics(false).trace(true).apply();
    telemetry::drain_spans();

    workload();
    let spans = telemetry::drain_spans();
    assert!(!spans.is_empty(), "trace produced no spans");

    // Group by thread; within a thread the seq field must record strictly
    // increasing completion order, and completion times must be monotone
    // when replayed in that order.
    let mut threads: Vec<u32> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let mut per: Vec<_> = spans.iter().filter(|s| s.thread == t).collect();
        per.sort_by_key(|s| s.seq);
        for pair in per.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "duplicate seq {} on thread {t}",
                pair[0].seq
            );
            assert!(
                pair[0].end_ns() <= pair[1].end_ns(),
                "span {} (seq {}) completed after {} (seq {}) but was recorded first",
                pair[0].name,
                pair[0].seq,
                pair[1].name,
                pair[1].seq
            );
        }
    }

    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
    telemetry::reset_metrics();
    telemetry::drain_spans();

    workload();

    let snap = deterministic_families(telemetry::snapshot());
    // Counter handles may exist from earlier runs, but nothing new is
    // recorded and no spans are buffered.
    assert!(snap.counters.iter().all(|&(_, v)| v == 0));
    assert!(snap.histograms.iter().all(|h| h.count == 0));
    assert!(telemetry::drain_spans().is_empty());
}

/// Pins [`telemetry::aggregate`]'s self-time attribution on the span
/// shape the fused executor produces: `fused.bundleN` wrapping
/// `tensor.fused_fwd` wrapping `tensor.matmul`. Each nanosecond must be
/// charged to exactly one op (the innermost enclosing span) — a fused
/// parent must **not** also be billed for its children, and self times
/// must partition the traced wall time exactly.
#[test]
fn aggregate_does_not_double_count_fused_nesting() {
    let rec = |name: &'static str, thread: u32, seq: u64, start_ns: u64, dur_ns: u64| {
        telemetry::SpanRecord {
            name,
            thread,
            seq,
            start_ns,
            dur_ns,
        }
    };
    // Thread 0: two sequential fused bundles, each with the executor
    // span and a nested matmul; thread 1 replays bundle 1 concurrently
    // (same names, same wall window) to pin per-thread reconstruction.
    let spans = vec![
        rec("tensor.matmul", 0, 1, 20, 30),
        rec("tensor.fused_fwd", 0, 2, 10, 80),
        rec("fused.bundle1", 0, 3, 0, 100),
        rec("tensor.matmul", 0, 4, 130, 10),
        rec("tensor.fused_fwd", 0, 5, 120, 40),
        rec("fused.bundle2", 0, 6, 100, 70),
        rec("tensor.matmul", 1, 1, 20, 30),
        rec("tensor.fused_fwd", 1, 2, 10, 80),
        rec("fused.bundle1", 1, 3, 0, 100),
    ];
    let stats = telemetry::aggregate(&spans);
    let self_ns = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing op {name}"))
            .self_ns
    };
    // Parents are charged only for time outside their children.
    assert_eq!(self_ns("fused.bundle1"), 2 * (100 - 80));
    assert_eq!(self_ns("fused.bundle2"), 70 - 40);
    assert_eq!(self_ns("tensor.fused_fwd"), 2 * (80 - 30) + (40 - 10));
    assert_eq!(self_ns("tensor.matmul"), 2 * 30 + 10);
    // Self times partition the traced intervals: thread 0 covers
    // [0, 170), thread 1 covers [0, 100) — nothing counted twice.
    let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
    assert_eq!(total_self, 170 + 100);
    // Inclusive totals still report the full per-op durations.
    let bundle1 = stats.iter().find(|s| s.name == "fused.bundle1").unwrap();
    assert_eq!(bundle1.calls, 2);
    assert_eq!(bundle1.total_ns, 200);
}
