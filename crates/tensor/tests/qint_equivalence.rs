//! The INT8 determinism contract: every available SIMD backend must be
//! **bit-identical** to the 32-lane scalar oracle on the integer
//! kernels (`matmul_i8_acc`, `dwconv3_i8`) over random shapes and
//! values — including the `i8::MIN` corner and accumulators driven
//! through i32 wrap-around — on the worker pool and under
//! [`parallel::serial`].
//!
//! Unlike the f32 contract (which is engineered: no FMA, lane-ordered
//! tails), integer equality is *structural* — wrapping i32 addition is
//! associative and commutative, so any lane split or thread count must
//! produce the same bits. These tests pin that the implementations
//! don't break the structure (e.g. via a widening shortcut that
//! saturates instead of wrapping).
//!
//! Backend forcing is process-global, so every test serializes on a
//! mutex (same discipline as `simd_equivalence.rs`).

use proptest::prelude::*;
use skynet_tensor::parallel;
use skynet_tensor::qint::{dwconv3_i8, matmul_i8_acc, quantize_i8, requant_i8};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = simd::active();
    simd::force(be);
    let out = f();
    simd::force(prev);
    out
}

/// Random i8 buffer with the extremes planted at deterministic
/// positions so every run exercises `i8::MIN`/`i8::MAX`.
fn random_i8(len: usize, rng: &mut SkyRng) -> Vec<i8> {
    let mut v: Vec<i8> = (0..len)
        .map(|_| rng.range(-128.0, 128.0).floor().clamp(-128.0, 127.0) as i8)
        .collect();
    if len > 0 {
        v[0] = i8::MIN;
    }
    if len > 1 {
        v[len / 2] = i8::MAX;
    }
    v
}

/// Runs `f` under the scalar oracle and under every other available
/// backend (pooled and forced-serial), asserting exact i32 equality.
fn assert_backends_agree(label: &str, f: impl Fn() -> Vec<i32>) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let oracle = with_backend(Backend::Scalar, &f);
    let oracle_ser = with_backend(Backend::Scalar, || parallel::serial(&f));
    assert_eq!(oracle, oracle_ser, "{label}: scalar pooled vs serial");
    for be in simd::available_backends() {
        if be == Backend::Scalar {
            continue;
        }
        let got = with_backend(be, &f);
        assert_eq!(
            oracle,
            got,
            "{label}: {} diverged from scalar oracle (pooled)",
            be.name()
        );
        let got_ser = with_backend(be, || parallel::serial(&f));
        assert_eq!(
            oracle,
            got_ser,
            "{label}: {} diverged from scalar oracle (serial)",
            be.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_i8_backends_agree(
        m in 1usize..12,
        k in 1usize..24,
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        let mut rng = SkyRng::new(seed);
        let a = random_i8(m * k, &mut rng);
        let b = random_i8(k * n, &mut rng);
        // Pre-seeded accumulators: the kernel must add, not overwrite.
        let acc0: Vec<i32> = (0..m * n)
            .map(|_| rng.range(-1000.0, 1000.0) as i32)
            .collect();
        assert_backends_agree("matmul_i8", || {
            let mut c = acc0.clone();
            matmul_i8_acc(&a, &b, &mut c, m, k, n);
            c
        });
    }

    #[test]
    fn dwconv3_i8_backends_agree(
        n in 1usize..3,
        c in 1usize..5,
        h in 1usize..8,
        w in 1usize..72,
        seed in 0u64..1000,
    ) {
        let mut rng = SkyRng::new(seed);
        let x = random_i8(n * c * h * w, &mut rng);
        let wt = random_i8(c * 9, &mut rng);
        assert_backends_agree("dwconv3_i8", || {
            let mut out = vec![0i32; n * c * h * w];
            dwconv3_i8(&x, &wt, &mut out, n, c, h, w);
            out
        });
    }

    #[test]
    fn requant_saturation_is_exactly_counted(
        seed in 0u64..1000,
        mult in 0.001f32..2.0,
        bias in -5.0f32..5.0,
    ) {
        // The requant epilogue is scalar f32 by contract (identical on
        // every backend); pin its clamp window and saturation count on
        // accumulators spanning the i32 extremes.
        let mut rng = SkyRng::new(seed);
        let mut acc: Vec<i32> = (0..64)
            .map(|_| rng.range(-3.0e4, 3.0e4) as i32)
            .collect();
        acc[0] = i32::MAX;
        acc[1] = i32::MIN;
        let mut out = vec![0i8; acc.len()];
        let sat = requant_i8(&acc, mult, bias, None, 0.05, &mut out);
        let expected_sat = acc
            .iter()
            .filter(|&&a| {
                let q = ((a as f32 * mult + bias) / 0.05).round();
                !(-127.0..=127.0).contains(&q)
            })
            .count() as u64;
        prop_assert_eq!(sat, expected_sat);
        // Symmetric grid: -128 is never produced.
        prop_assert!(out.iter().all(|&q| (-127..=127).contains(&q)));
        prop_assert_eq!(out[0], 127);
        prop_assert_eq!(out[1], -127);
    }

    #[test]
    fn quantize_never_emits_negative_128(
        seed in 0u64..1000,
        scale in 0.001f32..1.0,
    ) {
        let mut rng = SkyRng::new(seed);
        let mut src: Vec<f32> = (0..256).map(|_| rng.range(-300.0, 300.0) * scale).collect();
        src[0] = -1e30; // far past the clamp (finite; non-finite maps to 0)
        let mut dst = vec![0i8; src.len()];
        let _ = quantize_i8(&src, scale, &mut dst);
        prop_assert!(dst.iter().all(|&q| (-127..=127).contains(&q)));
        prop_assert_eq!(dst[0], -127);
    }
}

/// i32 wrap-around: k accumulation steps of (−128)² exceed i32::MAX
/// partway through; every backend and lane split must wrap identically
/// (two's-complement), not saturate.
#[test]
fn accumulator_wraps_identically_across_backends() {
    let k = 1usize << 18; // 2^18 · 16384 = 2^32: wraps past i32::MAX
    let n = 67; // full 32-blocks + scalar tail
    let a = vec![i8::MIN; k];
    let b = vec![i8::MIN; k * n];
    assert_backends_agree("matmul_i8 wrap", || {
        let mut c = vec![0i32; n];
        matmul_i8_acc(&a, &b, &mut c, 1, k, n);
        c
    });
    // And the wrapped value itself is pinned: 2^18 · 2^14 ≡ 0 (mod 2^32).
    let mut c = vec![0i32; n];
    matmul_i8_acc(&a, &b, &mut c, 1, k, n);
    assert!(c.iter().all(|&v| v == 0), "2^32 wraps to exactly zero");
}

/// The pinned SkyNet geometries (quarter-scale bundle widths) agree
/// across backends end-to-end through the depth-wise kernel.
#[test]
fn skynet_geometries_agree() {
    for (c, h, w) in [(12, 20, 40), (24, 10, 20), (48, 5, 10), (96, 5, 10)] {
        let mut rng = SkyRng::new((c * h + w) as u64);
        let x = random_i8(c * h * w, &mut rng);
        let wt = random_i8(c * 9, &mut rng);
        assert_backends_agree("dwconv3_i8 skynet-geo", || {
            let mut out = vec![0i32; c * h * w];
            dwconv3_i8(&x, &wt, &mut out, 1, c, h, w);
            out
        });
    }
}
