//! The fused INT8 bundle's determinism contract, attacked from two
//! sides:
//!
//! * **Store-loop requant** — the fused executor never calls
//!   [`requant_i8`] on a full feature map; it folds the epilogue into
//!   the band store, requantizing accumulator slices straight into
//!   output row windows. Requantization is per-element and scalar-f32
//!   by contract, so *any* band partition must be bitwise equal to one
//!   whole-map call — including `i32::MAX`/`i32::MIN` accumulators and
//!   values pinned exactly on the activation-clamp edges — and the
//!   per-band saturation counts must sum to the whole-map count.
//! * **Whole bundle** — [`qfused_bundle_forward`] (DW tile → requant →
//!   PW → requant, cache-resident) against the staged full-map oracle
//!   over random geometries and random per-channel epilogues, on every
//!   available SIMD backend, pooled and forced-serial.
//!
//! Backend forcing is process-global, so backend-sweeping tests
//! serialize on a mutex (same discipline as `qint_equivalence.rs`).

use proptest::prelude::*;
use skynet_tensor::fused::{qfused_bundle_forward, QEpilogue};
use skynet_tensor::qint::{dwconv3_i8, matmul_i8, requant_i8};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use skynet_tensor::{parallel, Shape};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = simd::active();
    simd::force(be);
    let out = f();
    simd::force(prev);
    out
}

/// The clamp windows the quantized engine actually produces:
/// no activation, ReLU, ReLU6.
fn clamp_variant(sel: u8) -> Option<(f32, f32)> {
    match sel % 3 {
        0 => None,
        1 => Some((0.0, f32::INFINITY)),
        _ => Some((0.0, 6.0)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused-store requant vs standalone: split the accumulator at
    /// random band boundaries, requant each band into the matching
    /// output window, and demand bitwise equality with the one-call
    /// form (plus exact saturation-count additivity).
    #[test]
    fn banded_requant_is_bitwise_equal_to_whole_map(
        len in 1usize..400,
        mult in 1e-6f32..10.0,
        bias in -100.0f32..100.0,
        out_scale in 1e-3f32..1.0,
        clamp_sel in 0u8..3,
        cut_seed in 0u64..1000,
    ) {
        let clamp = clamp_variant(clamp_sel);
        let mut rng = SkyRng::new(cut_seed);
        let mut acc: Vec<i32> = (0..len)
            .map(|_| rng.range(-4.0e4, 4.0e4) as i32)
            .collect();
        // Plant the i32 extremes and exact clamp-edge producers.
        acc[0] = i32::MAX;
        if len > 1 {
            acc[1] = i32::MIN;
        }
        if len > 2 {
            // acc·mult + bias == clamp floor (0.0) exactly when
            // acc == -bias/mult and that quotient is representable;
            // nearby values probe the edge either way.
            acc[2] = (-bias / mult) as i32;
        }
        if len > 3 {
            if let Some((_, hi)) = clamp {
                if hi.is_finite() {
                    acc[3] = ((hi - bias) / mult) as i32;
                }
            }
        }

        let mut whole = vec![0i8; len];
        let want_sat = requant_i8(&acc, mult, bias, clamp, out_scale, &mut whole);

        // Random band partition (1–5 cuts, duplicates collapse).
        let mut cuts: Vec<usize> = (0..(cut_seed % 5 + 1))
            .map(|_| rng.range(0.0, len as f32) as usize)
            .collect();
        cuts.push(0);
        cuts.push(len);
        cuts.sort_unstable();
        cuts.dedup();

        let mut banded = vec![0i8; len];
        let mut got_sat = 0u64;
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            got_sat += requant_i8(&acc[a..b], mult, bias, clamp, out_scale, &mut banded[a..b]);
        }
        prop_assert_eq!(banded, whole);
        prop_assert_eq!(got_sat, want_sat);
    }

    /// The whole fused bundle against the staged full-map oracle, over
    /// random geometries and random per-channel epilogues, on every
    /// available backend.
    #[test]
    fn qfused_bundle_matches_staged_oracle(
        n in 1usize..3,
        c in 1usize..6,
        c2 in 1usize..8,
        h in 1usize..7,
        w in 1usize..40,
        seed in 0u64..1000,
        clamp_sel in 0u8..3,
    ) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let clamp = clamp_variant(clamp_sel);
        let mut rng = SkyRng::new(seed);
        let plane = h * w;
        let mut ri8 = |len: usize| -> Vec<i8> {
            let mut v: Vec<i8> = (0..len)
                .map(|_| rng.range(-128.0, 128.0).floor().clamp(-128.0, 127.0) as i8)
                .collect();
            if len > 0 {
                v[0] = i8::MIN;
            }
            if len > 1 {
                v[len / 2] = i8::MAX;
            }
            v
        };
        let x = ri8(n * c * plane);
        let dw_w = ri8(c * 9);
        let pw_w = ri8(c2 * c);
        let mut rf = |lo: f32, hi: f32, len: usize| -> Vec<f32> {
            (0..len).map(|_| rng.range(lo, hi)).collect()
        };
        let dw_mult = rf(1e-4, 5e-2, c);
        let dw_bias = rf(-0.5, 0.5, c);
        let pw_mult = rf(1e-4, 5e-2, c2);
        let pw_bias = rf(-0.5, 0.5, c2);
        let dw_ep = QEpilogue { mult: &dw_mult, bias: &dw_bias, clamp, out_scale: 0.05 };
        let pw_ep = QEpilogue { mult: &pw_mult, bias: &pw_bias, clamp, out_scale: 0.04 };

        // Staged oracle: full-map DW, requant, PW, requant (scalar
        // backend — the cross-backend claim is carried by the sweep
        // below agreeing with this one answer).
        let (want, want_sats) = with_backend(Backend::Scalar, || {
            let mut acc = vec![0i32; n * c * plane];
            dwconv3_i8(&x, &dw_w, &mut acc, n, c, h, w);
            let mut q = vec![0i8; n * c * plane];
            let mut sat_dw = 0u64;
            for pi in 0..n * c {
                let (ch, o) = (pi % c, pi * plane);
                sat_dw += requant_i8(
                    &acc[o..o + plane], dw_mult[ch], dw_bias[ch], clamp, 0.05,
                    &mut q[o..o + plane],
                );
            }
            let mut pacc = vec![0i32; n * c2 * plane];
            for item in 0..n {
                matmul_i8(
                    &pw_w,
                    &q[item * c * plane..(item + 1) * c * plane],
                    &mut pacc[item * c2 * plane..(item + 1) * c2 * plane],
                    c2, c, plane,
                );
            }
            let mut out = vec![0i8; n * c2 * plane];
            let mut sat_pw = 0u64;
            for pi in 0..n * c2 {
                let (oc, o) = (pi % c2, pi * plane);
                sat_pw += requant_i8(
                    &pacc[o..o + plane], pw_mult[oc], pw_bias[oc], clamp, 0.04,
                    &mut out[o..o + plane],
                );
            }
            (out, (sat_dw, sat_pw))
        });

        for be in simd::available_backends() {
            for serial in [false, true] {
                let run = || {
                    let mut got = vec![0i8; n * c2 * plane];
                    let sats = qfused_bundle_forward(
                        &x, Shape::new(n, c, h, w), &dw_w, &dw_ep, &pw_w, c2, &pw_ep,
                        &mut got,
                    )
                    .unwrap();
                    (got, (sats.dw, sats.pw))
                };
                let (got, got_sats) = with_backend(be, || {
                    if serial { parallel::serial(run) } else { run() }
                });
                assert_eq!(
                    got,
                    want,
                    "{} serial={serial}: fused bundle diverged",
                    be.name()
                );
                assert_eq!(
                    got_sats,
                    want_sats,
                    "{} serial={serial}: saturation counts diverged",
                    be.name()
                );
            }
        }
    }
}
