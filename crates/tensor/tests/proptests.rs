//! Property-based tests of the tensor kernels' algebraic invariants.

use proptest::prelude::*;
use skynet_tensor::conv::{conv2d, ConvGeometry};
use skynet_tensor::dwconv::dwconv2d;
use skynet_tensor::ops::{concat_channels, fake_quantize, resize_bilinear, split_channels};
use skynet_tensor::pool::maxpool2d;
use skynet_tensor::reorg::{reorg, reorg_backward};
use skynet_tensor::{Shape, Tensor};

fn tensor_strategy(shape: Shape) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, shape.numel())
        .prop_map(move |v| Tensor::from_vec(shape, v).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolution is linear: conv(a + b) = conv(a) + conv(b).
    #[test]
    fn conv_is_linear(
        a in tensor_strategy(Shape::new(1, 2, 5, 5)),
        b in tensor_strategy(Shape::new(1, 2, 5, 5)),
        w in tensor_strategy(Shape::new(3, 2, 3, 3)),
    ) {
        let geo = ConvGeometry::same3x3();
        let sum = a.add(&b).unwrap();
        let lhs = conv2d(&sum, &w, None, geo).unwrap();
        let rhs = conv2d(&a, &w, None, geo).unwrap()
            .add(&conv2d(&b, &w, None, geo).unwrap()).unwrap();
        let err = lhs.sub(&rhs).unwrap().max_abs();
        prop_assert!(err < 1e-3, "nonlinearity {err}");
    }

    /// Depth-wise conv is linear too.
    #[test]
    fn dwconv_is_linear(
        a in tensor_strategy(Shape::new(1, 3, 4, 4)),
        b in tensor_strategy(Shape::new(1, 3, 4, 4)),
        w in tensor_strategy(Shape::new(3, 1, 3, 3)),
    ) {
        let geo = ConvGeometry::same3x3();
        let sum = a.add(&b).unwrap();
        let lhs = dwconv2d(&sum, &w, None, geo).unwrap();
        let rhs = dwconv2d(&a, &w, None, geo).unwrap()
            .add(&dwconv2d(&b, &w, None, geo).unwrap()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-3);
    }

    /// Reorg is a bijection: backward(forward(x)) == x, and values are a
    /// permutation.
    #[test]
    fn reorg_is_a_permutation(x in tensor_strategy(Shape::new(1, 2, 4, 6))) {
        let y = reorg(&x, 2).unwrap();
        let back = reorg_backward(x.shape(), &y, 2).unwrap();
        prop_assert_eq!(back, x.clone());
        let mut a: Vec<f32> = x.as_slice().to_vec();
        let mut b: Vec<f32> = y.as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b);
    }

    /// Max pooling returns the max of each window; every output equals
    /// some input and is ≥ all inputs of its window.
    #[test]
    fn maxpool_outputs_window_maxima(x in tensor_strategy(Shape::new(1, 2, 4, 4))) {
        let p = maxpool2d(&x, 2).unwrap();
        for (i, &v) in p.output.as_slice().iter().enumerate() {
            let src = x.as_slice()[p.argmax[i] as usize];
            prop_assert_eq!(v, src);
        }
        // Global max survives pooling.
        let gmax = x.as_slice().iter().copied().fold(f32::MIN, f32::max);
        let pmax = p.output.as_slice().iter().copied().fold(f32::MIN, f32::max);
        prop_assert_eq!(gmax, pmax);
    }

    /// Fake quantization is idempotent and bounded by one step.
    #[test]
    fn fake_quantize_idempotent_and_bounded(
        x in tensor_strategy(Shape::new(1, 1, 3, 7)),
        bits in 2u8..12,
    ) {
        let q1 = fake_quantize(&x, bits);
        let q2 = fake_quantize(&q1, bits);
        let drift = q1.sub(&q2).unwrap().max_abs();
        let levels = ((1u32 << (bits - 1)) - 1) as f32;
        let delta = x.max_abs() / levels;
        prop_assert!(drift <= delta * 0.51 + 1e-6, "drift {drift} vs delta {delta}");
        let err = x.sub(&q1).unwrap().max_abs();
        prop_assert!(err <= delta * 0.51 + 1e-6, "err {err} vs delta {delta}");
    }

    /// Concat then split is the identity.
    #[test]
    fn concat_split_roundtrip(
        a in tensor_strategy(Shape::new(2, 2, 3, 3)),
        b in tensor_strategy(Shape::new(2, 3, 3, 3)),
    ) {
        let cat = concat_channels(&a, &b).unwrap();
        let (a2, b2) = split_channels(&cat, 2).unwrap();
        prop_assert_eq!(a2, a);
        prop_assert_eq!(b2, b);
    }

    /// Resizing to the same extent is the identity; resized values stay
    /// within the input's range (bilinear is a convex combination).
    #[test]
    fn resize_respects_range(x in tensor_strategy(Shape::new(1, 1, 4, 6))) {
        prop_assert_eq!(resize_bilinear(&x, 4, 6).unwrap(), x.clone());
        let up = resize_bilinear(&x, 7, 9).unwrap();
        let lo = x.as_slice().iter().copied().fold(f32::MAX, f32::min);
        let hi = x.as_slice().iter().copied().fold(f32::MIN, f32::max);
        for &v in up.as_slice() {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    /// Pointwise conv commutes with spatial subsetting: computing on a
    /// batch equals computing per item.
    #[test]
    fn conv_batch_equals_per_item(
        x in tensor_strategy(Shape::new(3, 2, 3, 3)),
        w in tensor_strategy(Shape::new(4, 2, 1, 1)),
    ) {
        let geo = ConvGeometry::pointwise();
        let batched = conv2d(&x, &w, None, geo).unwrap();
        for n in 0..3 {
            let single = conv2d(&x.batch_item(n), &w, None, geo).unwrap();
            let err = single.sub(&batched.batch_item(n)).unwrap().max_abs();
            prop_assert!(err < 1e-4);
        }
    }
}
