//! Fused-bundle equivalence: `fused::fused_bundle_forward` must be
//! **bit-identical** to the unfused layer-by-layer composition
//! (`dwconv2d → bn_apply_eval → relu/relu6 → conv2d → bn_apply_eval →
//! relu/relu6`) over random shapes/strides, the pinned SkyNet bundle
//! geometries, and every available `SKYNET_SIMD` backend — pooled and
//! forced-serial. CI additionally runs this suite under
//! `SKYNET_THREADS=1` and the default pool, and with `SKYNET_FUSION`
//! on/off (the toggle must not affect these kernel-level calls at all).
//!
//! Backend forcing is process-global, so tests serialize on a mutex
//! (same discipline as `simd_equivalence`).

use proptest::prelude::*;
use skynet_tensor::conv::{conv2d, ConvGeometry};
use skynet_tensor::dwconv::dwconv2d;
use skynet_tensor::fused::{fused_bundle_forward, BnAct};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use skynet_tensor::{ops, parallel, Shape, Tensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = simd::active();
    simd::force(be);
    let out = f();
    simd::force(prev);
    out
}

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn random_bnact(rng: &mut SkyRng, c: usize, ceiling: Option<f32>) -> BnAct {
    BnAct::new(
        (0..c).map(|_| rng.range(-0.5, 0.5)).collect(),
        &(0..c).map(|_| rng.range(0.05, 1.5)).collect::<Vec<_>>(),
        1e-5,
        (0..c).map(|_| rng.range(0.5, 1.5)).collect(),
        (0..c).map(|_| rng.range(-0.5, 0.5)).collect(),
        ceiling,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The unfused oracle: the exact eval-mode layer sequence of a bundle.
fn unfused_bundle(
    x: &Tensor,
    dw_w: &Tensor,
    geo: ConvGeometry,
    bn1: &BnAct,
    pw_w: &Tensor,
    bn2: &BnAct,
) -> Tensor {
    let bn_act = |t: &Tensor, bn: &BnAct| {
        let s = t.shape();
        let mut y = Tensor::zeros(s);
        for n in 0..s.n {
            for ch in 0..s.c {
                let o = (n * s.c + ch) * s.plane();
                simd::bn_apply_eval(
                    &t.as_slice()[o..o + s.plane()],
                    &mut y.as_mut_slice()[o..o + s.plane()],
                    bn.mean[ch],
                    bn.inv_std[ch],
                    bn.gamma[ch],
                    bn.beta[ch],
                );
            }
        }
        if bn.ceiling.is_finite() {
            ops::relu6(&y)
        } else {
            ops::relu(&y)
        }
    };
    let t = dwconv2d(x, dw_w, None, geo).unwrap();
    let t = bn_act(&t, bn1);
    let t = conv2d(&t, pw_w, None, ConvGeometry::pointwise()).unwrap();
    bn_act(&t, bn2)
}

/// Asserts fused == unfused bitwise on every available backend, pooled
/// and serial, with the scalar unfused run as the cross-backend anchor.
#[allow(clippy::too_many_arguments)]
fn bundle_case(
    seed: u64,
    n: usize,
    c: usize,
    c2: usize,
    h: usize,
    w: usize,
    s: usize,
    relu6: bool,
) {
    let geo = ConvGeometry::new(3, s, 1);
    if geo.out_extent(h) == 0 || geo.out_extent(w) == 0 {
        return;
    }
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = SkyRng::new(seed);
    let x = random_tensor(Shape::new(n, c, h, w), &mut rng);
    let dw_w = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
    let pw_w = random_tensor(Shape::new(c2, c, 1, 1), &mut rng);
    let ceiling = if relu6 { Some(6.0) } else { None };
    let bn1 = random_bnact(&mut rng, c, ceiling);
    let bn2 = random_bnact(&mut rng, c2, ceiling);

    let anchor = with_backend(Backend::Scalar, || {
        unfused_bundle(&x, &dw_w, geo, &bn1, &pw_w, &bn2)
            .as_slice()
            .to_vec()
    });
    for be in simd::available_backends() {
        let label = be.name();
        let unf = with_backend(be, || {
            unfused_bundle(&x, &dw_w, geo, &bn1, &pw_w, &bn2)
                .as_slice()
                .to_vec()
        });
        assert_eq!(bits(&anchor), bits(&unf), "{label}: unfused vs scalar");
        let fus = with_backend(be, || {
            fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2)
                .unwrap()
                .as_slice()
                .to_vec()
        });
        assert_eq!(
            bits(&anchor),
            bits(&fus),
            "{label}: fused vs unfused (pooled)"
        );
        let fus_ser = with_backend(be, || {
            parallel::serial(|| {
                fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2)
                    .unwrap()
                    .as_slice()
                    .to_vec()
            })
        });
        assert_eq!(
            bits(&anchor),
            bits(&fus_ser),
            "{label}: fused vs unfused (serial)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random bundle geometries: the fused executor agrees with the
    /// layerwise oracle bitwise on every backend.
    #[test]
    fn fused_bundle_matches_unfused_random(
        seed in 0u64..1_000_000,
        n in 1usize..3,
        c in 1usize..7,
        c2 in 1usize..9,
        h in 1usize..20,
        w in 1usize..24,
        stride in 1usize..3,
        relu6 in 0usize..2,
    ) {
        bundle_case(seed, n, c, c2, h, w, stride, relu6 == 1);
    }
}

/// The pinned SkyNet model-C bundle geometries at width divisor 8
/// (the shapes `kernel_bench` times), plus the full-width first bundle.
#[test]
fn fused_bundle_matches_unfused_skynet_geometries() {
    for &(seed, n, c, c2, h, w) in &[
        (1u64, 1usize, 3usize, 6usize, 40usize, 80usize), // bundle1 (÷8)
        (2, 1, 6, 12, 20, 40),                            // bundle2
        (3, 1, 12, 24, 10, 20),                           // bundle3
        (4, 1, 24, 48, 5, 10),                            // bundle4
        (5, 1, 48, 64, 5, 10),                            // bundle5
        (6, 1, 160, 12, 5, 10),                           // bundle6 (48+96·?/8 concat)
        (7, 2, 12, 24, 10, 20),                           // batched
    ] {
        bundle_case(seed, n, c, c2, h, w, 1, true);
    }
}

/// Degenerate spatial extents: rows shorter than one vector block,
/// border-only planes, single pixels.
#[test]
fn fused_bundle_matches_unfused_degenerate() {
    for &(seed, h, w) in &[
        (11u64, 1usize, 1usize),
        (12, 1, 9),
        (13, 9, 1),
        (14, 2, 2),
        (15, 3, 40),
    ] {
        bundle_case(seed, 1, 3, 4, h, w, 1, true);
        bundle_case(seed, 1, 3, 4, h, w, 2, false);
    }
}
