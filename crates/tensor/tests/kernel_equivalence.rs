//! Property tests of the specialized depth-wise kernels against the
//! generic bounds-checked reference kernels (`dwconv::reference`) for
//! arbitrary shapes, strides and pads — on the worker pool and under
//! [`parallel::serial`].
//!
//! The **forward** fast path matches the reference **bit for bit** on
//! every geometry except the SkyNet lane path (`k = 3`, strides 1–2),
//! whose interior rows use the balanced accumulation tree — a different
//! (but fixed) f32 summation order, so those geometries get a rounding
//! tolerance instead. The **backward** fast path for the same
//! geometries runs the lane-ordered SIMD schedule, which reorders its
//! reduction sums: it too is compared to the reference with a
//! tolerance. Both directions stay bitwise against *themselves* across
//! thread counts (asserted below) and across SIMD backends (the
//! `simd_equivalence` suite).

use proptest::prelude::*;
use skynet_tensor::conv::ConvGeometry;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward, reference};
use skynet_tensor::parallel;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{Shape, Tensor};

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn vec_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Tolerance for the lane-reordered backward schedule vs the reference
/// ordering: pure rounding drift, far below any real kernel bug (which
/// produces O(1) relative errors).
fn close(a: &[f32], b: &[f32]) -> std::result::Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("length {} vs {}", a.len(), b.len()));
    }
    for (i, (&av, &bv)) in a.iter().zip(b).enumerate() {
        if (av - bv).abs() > 1e-3 * bv.abs().max(1.0) {
            return Err(format!("[{i}]: {av} vs {bv}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Specialized forward == reference forward over random geometries
    /// (non-square spatial extents so row/column interior ranges
    /// differ): bit for bit off the lane path, rounding tolerance on it
    /// (`k = 3`, strides 1–2, where interior rows use the balanced
    /// accumulation tree). Pooled vs forced-serial stays bitwise always.
    #[test]
    fn specialized_forward_matches_reference(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        c in 1usize..6,
        h in 3usize..11,
        w in 3usize..11,
        kernel in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        let geo = ConvGeometry::new(kernel, stride, pad);
        if geo.out_extent(h) == 0 || geo.out_extent(w) == 0 {
            return Ok(()); // degenerate geometry: rejected by both kernels
        }
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, kernel, kernel), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();

        // The lane path (k3, strides 1-2) uses the balanced tree: a
        // fixed but different summation order than the reference chain.
        let lane_path = kernel == 3 && stride <= 2;

        let fast = dwconv2d(&x, &wt, Some(&b), geo).unwrap();
        let slow = reference::dwconv2d_ref(&x, &wt, Some(&b), geo).unwrap();
        if lane_path {
            prop_assert!(close(fast.as_slice(), slow.as_slice()).is_ok());
        } else {
            prop_assert_eq!(bits(&fast), bits(&slow));
        }

        let fast_ser = parallel::serial(|| dwconv2d(&x, &wt, Some(&b), geo)).unwrap();
        prop_assert_eq!(bits(&fast_ser), bits(&fast));

        // Bias-free path too (distinct accumulator seed).
        let fast_nb = dwconv2d(&x, &wt, None, geo).unwrap();
        let slow_nb = reference::dwconv2d_ref(&x, &wt, None, geo).unwrap();
        if lane_path {
            prop_assert!(close(fast_nb.as_slice(), slow_nb.as_slice()).is_ok());
        } else {
            prop_assert_eq!(bits(&fast_nb), bits(&slow_nb));
        }
    }

    /// Specialized backward ≈ reference backward for all three gradients
    /// (tolerance: the lane-ordered schedule reorders reduction sums),
    /// while pooled vs forced-serial stays **bitwise** — the thread-count
    /// determinism guarantee is unchanged.
    #[test]
    fn specialized_backward_matches_reference_closely(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        c in 1usize..6,
        h in 3usize..11,
        w in 3usize..11,
        kernel in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        let geo = ConvGeometry::new(kernel, stride, pad);
        if geo.out_extent(h) == 0 || geo.out_extent(w) == 0 {
            return Ok(());
        }
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, kernel, kernel), &mut rng);
        let os = geo.out_shape(x.shape(), c);
        let go = random_tensor(os, &mut rng);

        let fast = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let slow = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
        prop_assert!(close(fast.input.as_slice(), slow.input.as_slice()).is_ok());
        prop_assert!(close(fast.weight.as_slice(), slow.weight.as_slice()).is_ok());
        prop_assert!(close(&fast.bias, &slow.bias).is_ok());

        let fast_ser = parallel::serial(|| dwconv2d_backward(&x, &wt, &go, geo)).unwrap();
        prop_assert_eq!(bits(&fast_ser.input), bits(&fast.input));
        prop_assert_eq!(bits(&fast_ser.weight), bits(&fast.weight));
        prop_assert_eq!(vec_bits(&fast_ser.bias), vec_bits(&fast.bias));
    }

    /// Sparse upstream gradients exercise the `g == 0.0` skip in the
    /// scalar streams (border + tail) and the skip-free vector stream.
    #[test]
    fn sparse_grad_backward_matches_reference_closely(
        seed in 0u64..1_000_000,
        h in 4usize..12,
        w in 4usize..12,
        stride in 1usize..3,
    ) {
        let geo = ConvGeometry::new(3, stride, 1);
        let mut rng = SkyRng::new(seed);
        let c = 3;
        let x = random_tensor(Shape::new(2, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
        let os = geo.out_shape(x.shape(), c);
        // ~75% exact zeros in the upstream gradient.
        let data: Vec<f32> = (0..os.numel())
            .map(|_| {
                let v = rng.range(-2.0, 2.0);
                if rng.range(0.0, 1.0) < 0.75 { 0.0 } else { v }
            })
            .collect();
        let go = Tensor::from_vec(os, data).unwrap();

        let fast = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let slow = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
        prop_assert!(close(fast.input.as_slice(), slow.input.as_slice()).is_ok());
        prop_assert!(close(fast.weight.as_slice(), slow.weight.as_slice()).is_ok());
        prop_assert!(close(&fast.bias, &slow.bias).is_ok());
    }
}

/// The exact geometries SkyNet instantiates (3×3 s1 p1 and the stride-2
/// pooling replacement) at a few real feature-map extents, pinned outside
/// proptest so they always run. Both directions take the lane path here,
/// so both compare to the reference with the rounding tolerance.
#[test]
fn skynet_geometries_close_to_reference() {
    let mut rng = SkyRng::new(0xD0E5);
    for &(c, h, w, s) in &[
        (3usize, 40usize, 80usize, 1usize),
        (24, 20, 40, 1),
        (48, 10, 20, 2),
        (160, 5, 10, 1),
    ] {
        let geo = ConvGeometry::new(3, s, 1);
        let x = random_tensor(Shape::new(1, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();
        let fast = dwconv2d(&x, &wt, Some(&b), geo).unwrap();
        let slow = reference::dwconv2d_ref(&x, &wt, Some(&b), geo).unwrap();
        close(fast.as_slice(), slow.as_slice())
            .unwrap_or_else(|e| panic!("fwd diverged at c={c} s={s}: {e}"));

        let go = random_tensor(fast.shape(), &mut rng);
        let gf = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let gs = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
        close(gf.input.as_slice(), gs.input.as_slice())
            .unwrap_or_else(|e| panic!("gi diverged at c={c} s={s}: {e}"));
        close(gf.weight.as_slice(), gs.weight.as_slice())
            .unwrap_or_else(|e| panic!("gw diverged at c={c} s={s}: {e}"));
        close(&gf.bias, &gs.bias).unwrap_or_else(|e| panic!("gb diverged at c={c} s={s}: {e}"));
    }
}
