//! Property tests of the specialized depth-wise kernels: the
//! interior/border split in [`skynet_tensor::dwconv`] must be
//! **bit-identical** to the generic bounds-checked reference kernels
//! (`dwconv::reference`) for arbitrary shapes, strides and pads — on the
//! worker pool and under [`parallel::serial`]. This is the contract that
//! lets the fast path replace the generic one without a tolerance.

use proptest::prelude::*;
use skynet_tensor::conv::ConvGeometry;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward, reference};
use skynet_tensor::parallel;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{Shape, Tensor};

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn vec_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Specialized forward == reference forward, bit for bit, pooled and
    /// forced-serial, over random geometries (non-square spatial extents
    /// so row/column interior ranges differ).
    #[test]
    fn specialized_forward_matches_reference_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        c in 1usize..6,
        h in 3usize..11,
        w in 3usize..11,
        kernel in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        let geo = ConvGeometry::new(kernel, stride, pad);
        if geo.out_extent(h) == 0 || geo.out_extent(w) == 0 {
            return Ok(()); // degenerate geometry: rejected by both kernels
        }
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, kernel, kernel), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();

        let fast = dwconv2d(&x, &wt, Some(&b), geo).unwrap();
        let slow = reference::dwconv2d_ref(&x, &wt, Some(&b), geo).unwrap();
        prop_assert_eq!(bits(&fast), bits(&slow));

        let fast_ser = parallel::serial(|| dwconv2d(&x, &wt, Some(&b), geo)).unwrap();
        let slow_ser = parallel::serial(|| reference::dwconv2d_ref(&x, &wt, Some(&b), geo)).unwrap();
        prop_assert_eq!(bits(&fast_ser), bits(&slow_ser));
        prop_assert_eq!(bits(&fast_ser), bits(&fast));

        // Bias-free path too (distinct accumulator seed).
        let fast_nb = dwconv2d(&x, &wt, None, geo).unwrap();
        let slow_nb = reference::dwconv2d_ref(&x, &wt, None, geo).unwrap();
        prop_assert_eq!(bits(&fast_nb), bits(&slow_nb));
    }

    /// Specialized backward == reference backward for all three
    /// gradients, bit for bit, pooled and forced-serial.
    #[test]
    fn specialized_backward_matches_reference_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..4,
        c in 1usize..6,
        h in 3usize..11,
        w in 3usize..11,
        kernel in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        let geo = ConvGeometry::new(kernel, stride, pad);
        if geo.out_extent(h) == 0 || geo.out_extent(w) == 0 {
            return Ok(());
        }
        let mut rng = SkyRng::new(seed);
        let x = random_tensor(Shape::new(n, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, kernel, kernel), &mut rng);
        let os = geo.out_shape(x.shape(), c);
        let go = random_tensor(os, &mut rng);

        let fast = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let slow = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
        prop_assert_eq!(bits(&fast.input), bits(&slow.input));
        prop_assert_eq!(bits(&fast.weight), bits(&slow.weight));
        prop_assert_eq!(vec_bits(&fast.bias), vec_bits(&slow.bias));

        let fast_ser = parallel::serial(|| dwconv2d_backward(&x, &wt, &go, geo)).unwrap();
        let slow_ser =
            parallel::serial(|| reference::dwconv2d_backward_ref(&x, &wt, &go, geo)).unwrap();
        prop_assert_eq!(bits(&fast_ser.input), bits(&slow_ser.input));
        prop_assert_eq!(bits(&fast_ser.weight), bits(&slow_ser.weight));
        prop_assert_eq!(vec_bits(&fast_ser.bias), vec_bits(&slow_ser.bias));
        prop_assert_eq!(bits(&fast_ser.input), bits(&fast.input));
    }

    /// Sparse upstream gradients exercise the `g == 0.0` skip in both
    /// interior and border scatter paths.
    #[test]
    fn sparse_grad_backward_matches_reference_bitwise(
        seed in 0u64..1_000_000,
        h in 4usize..12,
        w in 4usize..12,
        stride in 1usize..3,
    ) {
        let geo = ConvGeometry::new(3, stride, 1);
        let mut rng = SkyRng::new(seed);
        let c = 3;
        let x = random_tensor(Shape::new(2, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
        let os = geo.out_shape(x.shape(), c);
        // ~75% exact zeros in the upstream gradient.
        let data: Vec<f32> = (0..os.numel())
            .map(|_| {
                let v = rng.range(-2.0, 2.0);
                if rng.range(0.0, 1.0) < 0.75 { 0.0 } else { v }
            })
            .collect();
        let go = Tensor::from_vec(os, data).unwrap();

        let fast = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let slow = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
        prop_assert_eq!(bits(&fast.input), bits(&slow.input));
        prop_assert_eq!(bits(&fast.weight), bits(&slow.weight));
        prop_assert_eq!(vec_bits(&fast.bias), vec_bits(&slow.bias));
    }
}

/// The exact geometries SkyNet instantiates (3×3 s1 p1 and the stride-2
/// pooling replacement) at a few real feature-map extents, pinned outside
/// proptest so they always run.
#[test]
fn skynet_geometries_bitwise() {
    let mut rng = SkyRng::new(0xD0E5);
    for &(c, h, w, s) in &[
        (3usize, 40usize, 80usize, 1usize),
        (24, 20, 40, 1),
        (48, 10, 20, 2),
        (160, 5, 10, 1),
    ] {
        let geo = ConvGeometry::new(3, s, 1);
        let x = random_tensor(Shape::new(1, c, h, w), &mut rng);
        let wt = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();
        let fast = dwconv2d(&x, &wt, Some(&b), geo).unwrap();
        let slow = reference::dwconv2d_ref(&x, &wt, Some(&b), geo).unwrap();
        assert_eq!(bits(&fast), bits(&slow), "fwd bits diverged at c={c} s={s}");

        let go = random_tensor(fast.shape(), &mut rng);
        let gf = dwconv2d_backward(&x, &wt, &go, geo).unwrap();
        let gs = reference::dwconv2d_backward_ref(&x, &wt, &go, geo).unwrap();
        assert_eq!(
            bits(&gf.input),
            bits(&gs.input),
            "gi diverged at c={c} s={s}"
        );
        assert_eq!(
            bits(&gf.weight),
            bits(&gs.weight),
            "gw diverged at c={c} s={s}"
        );
        assert_eq!(
            vec_bits(&gf.bias),
            vec_bits(&gs.bias),
            "gb diverged at c={c} s={s}"
        );
    }
}
