//! GOT-10k evaluation metrics (§7): Average Overlap and Success Rate.

use skynet_core::BBox;

/// Per-sequence overlap record.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceOverlaps {
    /// IoU between prediction and ground truth for every evaluated frame
    /// (the first frame is initialization and excluded, per protocol).
    pub ious: Vec<f32>,
}

impl SequenceOverlaps {
    /// Mean IoU over the sequence.
    pub fn average_overlap(&self) -> f32 {
        if self.ious.is_empty() {
            return 0.0;
        }
        self.ious.iter().sum::<f32>() / self.ious.len() as f32
    }

    /// Fraction of frames with IoU above `threshold`.
    pub fn success_rate(&self, threshold: f32) -> f32 {
        if self.ious.is_empty() {
            return 0.0;
        }
        self.ious.iter().filter(|&&v| v > threshold).count() as f32 / self.ious.len() as f32
    }
}

/// Computes per-frame IoUs of predictions against ground truth.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn overlaps(predictions: &[BBox], ground_truth: &[BBox]) -> SequenceOverlaps {
    assert_eq!(
        predictions.len(),
        ground_truth.len(),
        "one prediction per annotated frame"
    );
    SequenceOverlaps {
        ious: predictions
            .iter()
            .zip(ground_truth)
            .map(|(p, g)| p.iou(g))
            .collect(),
    }
}

/// Benchmark-level aggregation: AO and SR averaged across sequences
/// ("models are evaluated with two metrics in GOT-10k benchmark, average
/// overlap (AO) and success rate (SR)").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GotMetrics {
    /// Average overlap.
    pub ao: f32,
    /// Success rate at IoU > 0.50.
    pub sr50: f32,
    /// Success rate at IoU > 0.75.
    pub sr75: f32,
}

/// Aggregates per-sequence overlaps into benchmark metrics (mean over
/// sequences, matching the GOT-10k server).
pub fn aggregate(sequences: &[SequenceOverlaps]) -> GotMetrics {
    if sequences.is_empty() {
        return GotMetrics {
            ao: 0.0,
            sr50: 0.0,
            sr75: 0.0,
        };
    }
    let n = sequences.len() as f32;
    GotMetrics {
        ao: sequences.iter().map(|s| s.average_overlap()).sum::<f32>() / n,
        sr50: sequences.iter().map(|s| s.success_rate(0.50)).sum::<f32>() / n,
        sr75: sequences.iter().map(|s| s.success_rate(0.75)).sum::<f32>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tracking_scores_one() {
        let gt = vec![BBox::new(0.5, 0.5, 0.2, 0.2); 10];
        let o = overlaps(&gt, &gt);
        assert!((o.average_overlap() - 1.0).abs() < 1e-6);
        assert_eq!(o.success_rate(0.5), 1.0);
        assert_eq!(o.success_rate(0.75), 1.0);
    }

    #[test]
    fn lost_track_scores_zero() {
        let gt = vec![BBox::new(0.2, 0.2, 0.1, 0.1); 5];
        let pred = vec![BBox::new(0.8, 0.8, 0.1, 0.1); 5];
        let o = overlaps(&pred, &gt);
        assert_eq!(o.average_overlap(), 0.0);
        assert_eq!(o.success_rate(0.5), 0.0);
    }

    #[test]
    fn success_rate_thresholds_are_ordered() {
        // Mixed-quality track: SR(0.5) ≥ SR(0.75).
        let gt: Vec<BBox> = (0..10).map(|_| BBox::new(0.5, 0.5, 0.2, 0.2)).collect();
        let pred: Vec<BBox> = (0..10)
            .map(|i| BBox::new(0.5 + i as f32 * 0.01, 0.5, 0.2, 0.2))
            .collect();
        let o = overlaps(&pred, &gt);
        assert!(o.success_rate(0.5) >= o.success_rate(0.75));
        assert!(o.average_overlap() > 0.5);
    }

    #[test]
    fn aggregate_means_over_sequences() {
        let a = SequenceOverlaps {
            ious: vec![1.0, 1.0],
        };
        let b = SequenceOverlaps {
            ious: vec![0.0, 0.0],
        };
        let m = aggregate(&[a, b]);
        assert!((m.ao - 0.5).abs() < 1e-6);
        assert!((m.sr50 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let m = aggregate(&[]);
        assert_eq!(m.ao, 0.0);
        let s = SequenceOverlaps { ious: vec![] };
        assert_eq!(s.average_overlap(), 0.0);
        assert_eq!(s.success_rate(0.5), 0.0);
    }
}
