//! A SiamRPN++-style Siamese tracker (Li et al., 2019; §7.1).
//!
//! Structure: a shared backbone extracts exemplar and search features;
//! depth-wise cross-correlation produces a response volume; a 1×1
//! classification head scores each response position and a 1×1 regression
//! head predicts log-scale box adjustments. Training uses frame pairs
//! from the same sequence, with the exemplar branch run without gradient
//! (the standard frozen-template simplification — the backbone still
//! learns through the search branch, and both branches share the updated
//! weights).

use crate::backbone::BackboneKind;
use crate::xcorr::{xcorr, xcorr_backward};
use skynet_core::BBox;
use skynet_data::got::crop_patch;
use skynet_nn::{Conv2d, Layer, Mode, Param, Sequential, Sgd};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng, Result, Tensor};

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiamConfig {
    /// Backbone choice.
    pub backbone: BackboneKind,
    /// Width divisor for the reduced-scale backbone.
    pub div: usize,
    /// Exemplar patch edge in pixels (paper: 127/128; scaled here).
    pub exemplar_px: usize,
    /// Search patch edge in pixels (paper: 255/256; scaled here).
    pub search_px: usize,
    /// Exemplar crop half-extent as a multiple of the object's larger
    /// side.
    pub context: f32,
    /// Damping on the regression head's scale update at inference.
    pub scale_damping: f32,
    /// Weight of the Hann-window motion prior blended into the response
    /// at inference (standard Siamese-tracker practice: the target moved
    /// little between frames, so central cells are favoured when the
    /// appearance response is ambiguous).
    pub window_influence: f32,
    /// RNG seed for weight init.
    pub seed: u64,
}

impl SiamConfig {
    /// Default configuration for a backbone at tracking scale.
    pub fn new(backbone: BackboneKind) -> Self {
        SiamConfig {
            backbone,
            div: 8,
            exemplar_px: 16,
            search_px: 48,
            context: 1.0,
            scale_damping: 0.3,
            window_influence: 0.35,
            seed: 0x51A,
        }
    }

    /// Search half-extent multiplier implied by the patch geometry.
    pub fn search_context(&self) -> f32 {
        self.context * self.search_px as f32 / self.exemplar_px as f32
    }
}

/// Tracker state carried between frames.
#[derive(Debug, Clone)]
struct TrackState {
    feat_z: Tensor,
    center: (f32, f32),
    size: (f32, f32),
}

/// One training example: an exemplar frame/box and a nearby search
/// frame/box from the same sequence.
#[derive(Debug, Clone)]
pub struct TrainPair {
    /// Frame the template is cut from.
    pub frame_z: Tensor,
    /// Template box.
    pub box_z: BBox,
    /// Frame the search window is cut from.
    pub frame_x: Tensor,
    /// Ground-truth box in the search frame.
    pub box_x: BBox,
}

/// The SiamRPN++-style tracker.
pub struct SiamRpn {
    cfg: SiamConfig,
    backbone: Sequential,
    feat_c: usize,
    cls_head: Conv2d,
    reg_head: Conv2d,
    state: Option<TrackState>,
}

impl SiamRpn {
    /// Builds a tracker with fresh weights.
    pub fn new(cfg: SiamConfig) -> Self {
        let mut rng = SkyRng::new(cfg.seed);
        let (backbone, feat_c) = cfg.backbone.build(cfg.div, &mut rng);
        SiamRpn {
            cfg,
            backbone,
            feat_c,
            cls_head: Conv2d::new(feat_c, 1, ConvGeometry::pointwise(), &mut rng),
            reg_head: Conv2d::new(feat_c, 2, ConvGeometry::pointwise(), &mut rng),
            state: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SiamConfig {
        &self.cfg
    }

    /// Mutable configuration access (e.g. to adjust the window influence
    /// or scale damping after construction).
    pub fn config_mut(&mut self) -> &mut SiamConfig {
        &mut self.cfg
    }

    /// Backbone feature channels.
    pub fn feature_channels(&self) -> usize {
        self.feat_c
    }

    /// Total trainable parameters (backbone + heads).
    pub fn param_count(&mut self) -> usize {
        let mut n = self.backbone.param_count();
        n += self.cls_head.param_count();
        n += self.reg_head.param_count();
        n
    }

    /// Visits all trainable parameters (for [`Sgd::step_visit`]).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
        self.cls_head.visit_params(f);
        self.reg_head.visit_params(f);
    }

    fn extract(
        &mut self,
        frame: &Tensor,
        cx: f32,
        cy: f32,
        half: f32,
        px: usize,
        mode: Mode,
    ) -> Result<Tensor> {
        let patch = crop_patch(frame, cx, cy, half, px);
        self.backbone.forward(&patch, mode)
    }

    /// One training step on a frame pair; returns the combined loss.
    /// The caller applies `opt.step_visit(&mut |f| tracker.visit_params(f))`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn train_pair(
        &mut self,
        frame_z: &Tensor,
        box_z: &BBox,
        frame_x: &Tensor,
        box_x: &BBox,
    ) -> Result<f32> {
        self.train_batch(&[TrainPair {
            frame_z: frame_z.clone(),
            box_z: *box_z,
            frame_x: frame_x.clone(),
            box_x: *box_x,
        }])
    }

    /// One training step on a **batch** of frame pairs. Batch statistics
    /// matter: the backbone's batch-norm layers are unstable with a batch
    /// of one, so the search patches of all pairs run through the
    /// backbone together.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn train_batch(&mut self, pairs: &[TrainPair]) -> Result<f32> {
        assert!(!pairs.is_empty(), "need at least one pair");
        let search_ctx = self.cfg.search_px as f32 / self.cfg.exemplar_px as f32;
        // Template branch without gradient (frozen-template protocol);
        // caches survive eval forwards, so these can run first.
        let mut feats_z = Vec::with_capacity(pairs.len());
        let mut halves_x = Vec::with_capacity(pairs.len());
        let mut patches_x = Vec::with_capacity(pairs.len());
        for p in pairs {
            let half_z = self.cfg.context * p.box_z.w.max(p.box_z.h);
            let half_x = half_z * search_ctx;
            feats_z.push(self.extract(
                &p.frame_z,
                p.box_z.cx,
                p.box_z.cy,
                half_z,
                self.cfg.exemplar_px,
                Mode::Eval,
            )?);
            halves_x.push(half_x);
            patches_x.push(crop_patch(
                &p.frame_x,
                p.box_z.cx,
                p.box_z.cy,
                half_x,
                self.cfg.search_px,
            ));
        }
        // Search branch trained as one batch.
        let batch_x = Tensor::stack(&patches_x)?;
        let feat_x_all = self.backbone.forward(&batch_x, Mode::Train)?;
        // Correlate per pair (each pair has its own template), then batch
        // the heads.
        let mut resps = Vec::with_capacity(pairs.len());
        for (i, fz) in feats_z.iter().enumerate() {
            resps.push(xcorr(&feat_x_all.batch_item(i), fz)?);
        }
        let resp_batch = Tensor::stack(&resps)?;
        let cls = self.cls_head.forward(&resp_batch, Mode::Train)?;
        let reg = self.reg_head.forward(&resp_batch, Mode::Train)?;

        let rs = cls.shape();
        let (gh, gw) = (rs.h, rs.w);
        let inv_n = 1.0 / pairs.len() as f32;
        let mut loss = 0.0f32;
        let mut g_cls = Tensor::zeros(cls.shape());
        let mut g_reg = Tensor::zeros(reg.shape());
        for (i, p) in pairs.iter().enumerate() {
            let (ty, tx) = displacement_to_cell(
                p.box_x.cx - p.box_z.cx,
                p.box_x.cy - p.box_z.cy,
                halves_x[i],
                gh,
                gw,
            );
            // Classification: sigmoid MSE against one-hot, positive cell
            // upweighted to balance the grid.
            for y in 0..gh {
                for x in 0..gw {
                    let v = cls.at(i, 0, y, x);
                    let s = 1.0 / (1.0 + (-v).exp());
                    let t = if (y, x) == (ty, tx) { 1.0 } else { 0.0 };
                    let w = if t > 0.5 { 4.0 } else { 1.0 };
                    loss += inv_n * w * (s - t) * (s - t);
                    *g_cls.at_mut(i, 0, y, x) = inv_n * w * 2.0 * (s - t) * s * (1.0 - s);
                }
            }
            // Regression at the target cell: log-scale deltas.
            let twl = (p.box_x.w / p.box_z.w.max(1e-6)).max(1e-4).ln();
            let thl = (p.box_x.h / p.box_z.h.max(1e-6)).max(1e-4).ln();
            let dw = reg.at(i, 0, ty, tx) - twl;
            let dh = reg.at(i, 1, ty, tx) - thl;
            loss += inv_n * (dw * dw + dh * dh);
            *g_reg.at_mut(i, 0, ty, tx) = inv_n * 2.0 * dw;
            *g_reg.at_mut(i, 1, ty, tx) = inv_n * 2.0 * dh;
        }

        // Backward: heads → response volume → per-pair correlation →
        // batched backbone.
        let g_resp_cls = self.cls_head.backward(&g_cls)?;
        let g_resp_reg = self.reg_head.backward(&g_reg)?;
        let g_resp = g_resp_cls.add(&g_resp_reg)?;
        let mut g_feats = Vec::with_capacity(pairs.len());
        for (i, fz) in feats_z.iter().enumerate() {
            let grads = xcorr_backward(&feat_x_all.batch_item(i), fz, &g_resp.batch_item(i))?;
            // Template-branch gradient dropped (frozen-template protocol).
            g_feats.push(grads.search);
        }
        let _ = self.backbone.backward(&Tensor::stack(&g_feats)?)?;
        Ok(loss)
    }

    /// Runs the backbone in eval mode on an already-cropped patch
    /// (used by the SiamMask mask branch).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn backbone_forward_eval(&mut self, patch: &Tensor) -> Result<Tensor> {
        self.backbone.forward(patch, Mode::Eval)
    }

    /// Current tracked center, if initialized.
    pub fn state_center(&self) -> Option<(f32, f32)> {
        self.state.as_ref().map(|s| s.center)
    }

    /// Replaces the tracked center/size with a refined box (used by
    /// SiamMask after mask-based refinement).
    ///
    /// # Panics
    ///
    /// Panics if [`SiamRpn::init`] has not been called.
    pub fn overwrite_state(&mut self, bbox: &BBox) {
        let state = self.state.as_mut().expect("init before overwrite_state");
        state.center = (bbox.cx, bbox.cy);
        state.size = (bbox.w, bbox.h);
    }

    /// Initializes tracking on the first frame with the ground-truth box
    /// (the GOT-10k one-shot protocol).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn init(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()> {
        let half_z = self.cfg.context * bbox.w.max(bbox.h);
        let feat_z = self.extract(
            frame,
            bbox.cx,
            bbox.cy,
            half_z,
            self.cfg.exemplar_px,
            Mode::Eval,
        )?;
        self.state = Some(TrackState {
            feat_z,
            center: (bbox.cx, bbox.cy),
            size: (bbox.w, bbox.h),
        });
        Ok(())
    }

    /// Raw response analysis shared by `update` and SiamMask: returns
    /// `(response, feat_x, search half-extent, peak cell)`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    ///
    /// # Panics
    ///
    /// Panics if [`SiamRpn::init`] has not been called.
    pub fn respond(&mut self, frame: &Tensor) -> Result<(Tensor, Tensor, f32, (usize, usize))> {
        let state = self.state.clone().expect("init before update");
        let half_z = self.cfg.context * state.size.0.max(state.size.1);
        let half_x = half_z * self.cfg.search_px as f32 / self.cfg.exemplar_px as f32;
        let feat_x = self.extract(
            frame,
            state.center.0,
            state.center.1,
            half_x,
            self.cfg.search_px,
            Mode::Eval,
        )?;
        let resp = xcorr(&feat_x, &state.feat_z)?;
        let cls = self.cls_head.forward(&resp, Mode::Eval)?;
        let rs = cls.shape();
        let gamma = self.cfg.window_influence;
        let mut best = (0usize, 0usize);
        let mut best_v = f32::MIN;
        for y in 0..rs.h {
            for x in 0..rs.w {
                let p = 1.0 / (1.0 + (-cls.at(0, 0, y, x)).exp());
                let v = (1.0 - gamma) * p + gamma * hann2(y, x, rs.h, rs.w);
                if v > best_v {
                    best_v = v;
                    best = (y, x);
                }
            }
        }
        Ok((resp, feat_x, half_x, best))
    }

    /// Tracks the object into the next frame, returning the new box.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    ///
    /// # Panics
    ///
    /// Panics if [`SiamRpn::init`] has not been called.
    pub fn update(&mut self, frame: &Tensor) -> Result<BBox> {
        let (resp, _feat_x, half_x, peak) = self.respond(frame)?;
        self.advance(&resp, half_x, peak)
    }

    /// Advances the tracker state from an already-computed response
    /// (produced by [`SiamRpn::respond`]). Split out so SiamMask can run
    /// one backbone pass per frame and share it between the RPN update
    /// and its mask branch.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    ///
    /// # Panics
    ///
    /// Panics if [`SiamRpn::init`] has not been called.
    pub fn advance(&mut self, resp: &Tensor, half_x: f32, peak: (usize, usize)) -> Result<BBox> {
        let reg = self.reg_head.forward(resp, Mode::Eval)?;
        let rs = reg.shape();
        let state = self.state.as_mut().expect("init before update");
        let (dx, dy) = cell_to_displacement(peak.0, peak.1, half_x, rs.h, rs.w);
        let mut cx = (state.center.0 + dx).clamp(0.02, 0.98);
        let mut cy = (state.center.1 + dy).clamp(0.02, 0.98);
        // Damped scale update from the regression head. A diverged model
        // can emit non-finite logits; treat those as "no scale change"
        // instead of poisoning the tracker state (f32::clamp panics on
        // NaN bounds-free inputs).
        let damp = self.cfg.scale_damping;
        let sanitize = |v: f32| {
            if v.is_finite() {
                (v * damp).clamp(-0.08, 0.08)
            } else {
                0.0
            }
        };
        let sw = sanitize(reg.at(0, 0, peak.0, peak.1)).exp();
        let sh = sanitize(reg.at(0, 1, peak.0, peak.1)).exp();
        let w = (state.size.0 * sw).clamp(0.02, 0.9);
        let h = (state.size.1 * sh).clamp(0.02, 0.9);
        // Keep the box inside the frame.
        cx = cx.clamp(w / 2.0, 1.0 - w / 2.0);
        cy = cy.clamp(h / 2.0, 1.0 - h / 2.0);
        state.center = (cx, cy);
        state.size = (w, h);
        Ok(BBox::new(cx, cy, w, h))
    }
}

impl std::fmt::Debug for SiamRpn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SiamRPN({}, C={})",
            self.cfg.backbone.name(),
            self.feat_c
        )
    }
}

/// Normalized 2-D Hann window value at cell `(y, x)` of a `gh×gw` grid
/// (1 at the center, 0 at the corners).
pub fn hann2(y: usize, x: usize, gh: usize, gw: usize) -> f32 {
    let h = |i: usize, n: usize| {
        if n <= 1 {
            1.0
        } else {
            0.5 * (1.0 - (2.0 * std::f32::consts::PI * i as f32 / (n - 1) as f32).cos())
        }
    };
    h(y, gh) * h(x, gw)
}

/// Maps a normalized frame displacement to a response-grid cell.
pub fn displacement_to_cell(dx: f32, dy: f32, half_x: f32, gh: usize, gw: usize) -> (usize, usize) {
    let fx = (dx / (2.0 * half_x) + 0.5).clamp(0.0, 1.0 - 1e-6);
    let fy = (dy / (2.0 * half_x) + 0.5).clamp(0.0, 1.0 - 1e-6);
    ((fy * gh as f32) as usize, (fx * gw as f32) as usize)
}

/// Inverse of [`displacement_to_cell`] at cell centers.
pub fn cell_to_displacement(cy: usize, cx: usize, half_x: f32, gh: usize, gw: usize) -> (f32, f32) {
    let fx = (cx as f32 + 0.5) / gw as f32 - 0.5;
    let fy = (cy as f32 + 0.5) / gh as f32 - 0.5;
    (fx * 2.0 * half_x, fy * 2.0 * half_x)
}

/// Trains a tracker over sequences by sampling frame pairs; returns the
/// mean loss of the final epoch.
///
/// # Errors
///
/// Propagates tensor shape errors.
pub fn train_on_sequences(
    tracker: &mut SiamRpn,
    sequences: &[skynet_data::got::TrackSequence],
    epochs: usize,
    opt: &mut Sgd,
    seed: u64,
) -> Result<f32> {
    let mut rng = SkyRng::new(seed);
    let mut last_epoch_loss = 0.0;
    const BATCH: usize = 6;
    for _ in 0..epochs {
        let mut total = 0.0;
        let mut steps = 0;
        let mut pending: Vec<TrainPair> = Vec::with_capacity(BATCH);
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            let i = rng.below(seq.len() - 1);
            let j = (i + 1 + rng.below((seq.len() - i - 1).min(4))).min(seq.len() - 1);
            pending.push(TrainPair {
                frame_z: seq.frames[i].clone(),
                box_z: seq.boxes[i],
                frame_x: seq.frames[j].clone(),
                box_x: seq.boxes[j],
            });
            if pending.len() == BATCH {
                total += tracker.train_batch(&pending)?;
                opt.step_visit(&mut |f| tracker.visit_params(f));
                pending.clear();
                steps += 1;
            }
        }
        if !pending.is_empty() {
            total += tracker.train_batch(&pending)?;
            opt.step_visit(&mut |f| tracker.visit_params(f));
            steps += 1;
        }
        last_epoch_loss = total / steps.max(1) as f32;
    }
    Ok(last_epoch_loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_data::got::{GotConfig, GotGen};

    fn tiny_cfg() -> SiamConfig {
        SiamConfig {
            div: 32,
            ..SiamConfig::new(BackboneKind::SkyNet)
        }
    }

    #[test]
    fn displacement_cell_roundtrip() {
        let (gh, gw) = (5, 5);
        let half = 0.3;
        for cell in [(0, 0), (2, 2), (4, 3)] {
            let (dx, dy) = cell_to_displacement(cell.0, cell.1, half, gh, gw);
            let back = displacement_to_cell(dx, dy, half, gh, gw);
            assert_eq!(back, cell);
        }
    }

    #[test]
    fn init_and_update_produce_valid_boxes() {
        let mut gen = GotGen::new(GotConfig::default());
        let seq = gen.sequence();
        let mut tracker = SiamRpn::new(tiny_cfg());
        tracker.init(&seq.frames[0], &seq.boxes[0]).unwrap();
        for frame in &seq.frames[1..4] {
            let b = tracker.update(frame).unwrap();
            assert!(b.w > 0.0 && b.h > 0.0);
            let (x1, y1, x2, y2) = b.corners();
            assert!(x1 >= -1e-4 && y1 >= -1e-4 && x2 <= 1.0 + 1e-4 && y2 <= 1.0 + 1e-4);
        }
    }

    #[test]
    fn training_reduces_pair_loss() {
        let mut gen = GotGen::new(GotConfig {
            seq_len: 6,
            distractor_prob: 0.0,
            ..GotConfig::default()
        });
        let seqs = gen.generate(4);
        let mut tracker = SiamRpn::new(tiny_cfg());
        let mut opt = Sgd::new(skynet_nn::LrSchedule::Constant(2e-3), 0.9, 1e-4);
        let first = train_on_sequences(&mut tracker, &seqs, 1, &mut opt, 1).unwrap();
        let mut mid = 0.0;
        for _ in 0..6 {
            mid = train_on_sequences(&mut tracker, &seqs, 1, &mut opt, 2).unwrap();
        }
        assert!(mid < first, "loss should drop: {first} → {mid}");
    }

    #[test]
    #[should_panic(expected = "init before update")]
    fn update_without_init_panics() {
        let mut gen = GotGen::new(GotConfig::default());
        let seq = gen.sequence();
        let mut tracker = SiamRpn::new(tiny_cfg());
        let _ = tracker.update(&seq.frames[0]);
    }
}
