//! The online tracking loop and the Tables 8–9 report: AO, SR@0.50,
//! SR@0.75 and measured FPS.

use crate::metrics::{aggregate, overlaps, GotMetrics, SequenceOverlaps};
use crate::siammask::SiamMask;
use crate::siamrpn::SiamRpn;
use skynet_core::BBox;
use skynet_data::got::TrackSequence;
use skynet_tensor::{Result, Tensor};
use std::time::Instant;

/// Anything that can be driven by the one-shot tracking protocol.
pub trait Tracker {
    /// Initializes on the first frame with the ground-truth box.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    fn start(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()>;

    /// Produces the box for the next frame.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    fn step(&mut self, frame: &Tensor) -> Result<BBox>;

    /// Display name for reports.
    fn label(&self) -> String;
}

impl Tracker for SiamRpn {
    fn start(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()> {
        self.init(frame, bbox)
    }

    fn step(&mut self, frame: &Tensor) -> Result<BBox> {
        self.update(frame)
    }

    fn label(&self) -> String {
        format!("SiamRPN++/{}", self.config().backbone.name())
    }
}

impl Tracker for SiamMask {
    fn start(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()> {
        self.init(frame, bbox)
    }

    fn step(&mut self, frame: &Tensor) -> Result<BBox> {
        self.update(frame)
    }

    fn label(&self) -> String {
        format!("SiamMask/{}", self.rpn.config().backbone.name())
    }
}

/// A Tables 8–9-shaped result row.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackReport {
    /// Tracker + backbone label.
    pub label: String,
    /// GOT-10k metrics.
    pub metrics: GotMetrics,
    /// Measured tracking throughput (update calls per wall-clock second).
    pub fps: f64,
    /// Number of sequences evaluated.
    pub sequences: usize,
}

/// Runs the one-shot protocol over every sequence and reports AO/SR/FPS.
///
/// # Errors
///
/// Propagates tensor shape errors from the tracker.
pub fn evaluate<T: Tracker>(tracker: &mut T, sequences: &[TrackSequence]) -> Result<TrackReport> {
    let mut per_seq: Vec<SequenceOverlaps> = Vec::with_capacity(sequences.len());
    let mut updates = 0usize;
    let mut elapsed = 0.0f64;
    for seq in sequences {
        if seq.len() < 2 {
            continue;
        }
        tracker.start(&seq.frames[0], &seq.boxes[0])?;
        let mut preds = Vec::with_capacity(seq.len() - 1);
        let start = Instant::now();
        for frame in &seq.frames[1..] {
            preds.push(tracker.step(frame)?);
        }
        elapsed += start.elapsed().as_secs_f64();
        updates += preds.len();
        per_seq.push(overlaps(&preds, &seq.boxes[1..]));
    }
    Ok(TrackReport {
        label: tracker.label(),
        metrics: aggregate(&per_seq),
        fps: updates as f64 / elapsed.max(1e-9),
        sequences: per_seq.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::BackboneKind;
    use crate::siamrpn::{train_on_sequences, SiamConfig};
    use skynet_data::got::{GotConfig, GotGen};
    use skynet_nn::{LrSchedule, Sgd};

    #[test]
    fn evaluation_produces_sane_report() {
        let mut gen = GotGen::new(GotConfig {
            seq_len: 6,
            ..GotConfig::default()
        });
        let seqs = gen.generate(3);
        let mut tracker = SiamRpn::new(SiamConfig {
            div: 32,
            ..SiamConfig::new(BackboneKind::SkyNet)
        });
        let report = evaluate(&mut tracker, &seqs).unwrap();
        assert_eq!(report.sequences, 3);
        assert!(report.fps > 0.0);
        assert!((0.0..=1.0).contains(&report.metrics.ao));
        assert!(report.label.contains("SkyNet"));
    }

    /// Fraction of frame transitions whose raw response peak (window
    /// prior off) lands within one cell of the true target cell — a
    /// direct probe of the learned appearance model, independent of
    /// whole-sequence drift.
    fn peak_accuracy(tracker: &mut SiamRpn, seqs: &[skynet_data::got::TrackSequence]) -> f32 {
        use crate::siamrpn::displacement_to_cell;
        let saved = tracker.config().window_influence;
        tracker.config_mut().window_influence = 0.0;
        let mut hits = 0usize;
        let mut total = 0usize;
        for seq in seqs {
            for i in 0..seq.len() - 1 {
                tracker.init(&seq.frames[i], &seq.boxes[i]).unwrap();
                let (resp, _, half_x, peak) = tracker.respond(&seq.frames[i + 1]).unwrap();
                let rs = resp.shape();
                let truth = displacement_to_cell(
                    seq.boxes[i + 1].cx - seq.boxes[i].cx,
                    seq.boxes[i + 1].cy - seq.boxes[i].cy,
                    half_x,
                    rs.h,
                    rs.w,
                );
                let dy = peak.0.abs_diff(truth.0);
                let dx = peak.1.abs_diff(truth.1);
                if dy <= 1 && dx <= 1 {
                    hits += 1;
                }
                total += 1;
            }
        }
        tracker.config_mut().window_influence = saved;
        hits as f32 / total.max(1) as f32
    }

    #[test]
    fn trained_appearance_model_beats_untrained() {
        let mut gen = GotGen::new(GotConfig {
            seq_len: 8,
            distractor_prob: 0.0,
            ..GotConfig::default()
        });
        let train_seqs = gen.generate(8);
        let eval_seqs = gen.generate(4);
        let cfg = SiamConfig {
            div: 16,
            ..SiamConfig::new(BackboneKind::SkyNet)
        };
        let mut fresh = SiamRpn::new(cfg);
        let untrained = peak_accuracy(&mut fresh, &eval_seqs);
        let mut tracker = SiamRpn::new(cfg);
        let mut opt = Sgd::new(LrSchedule::Constant(1e-3), 0.9, 1e-4);
        for _ in 0..15 {
            train_on_sequences(&mut tracker, &train_seqs, 1, &mut opt, 7).unwrap();
        }
        let trained = peak_accuracy(&mut tracker, &eval_seqs);
        assert!(
            trained > untrained + 0.1,
            "appearance training must sharpen the response peak: {untrained:.3} -> {trained:.3}"
        );
    }
}
