//! Swappable tracker backbones (Tables 8–9).

use skynet_core::skynet::{self, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer, Sequential};
use skynet_tensor::rng::SkyRng;
use skynet_zoo::{alexnet, resnet};

/// Which backbone the tracker extracts features with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackboneKind {
    /// AlexNet — the fast baseline of Table 8.
    AlexNet,
    /// ResNet-50 — the reference backbone of SiamRPN++/SiamMask.
    ResNet50,
    /// SkyNet (Bundles 1–5) — the paper's proposal.
    SkyNet,
}

impl BackboneKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackboneKind::AlexNet => "AlexNet",
            BackboneKind::ResNet50 => "ResNet-50",
            BackboneKind::SkyNet => "SkyNet",
        }
    }

    /// Paper-scale backbone parameter count (for the §7 size comparison;
    /// ResNet-50 / SkyNet ≈ 37–53× depending on whether heads are
    /// included — EXPERIMENTS.md reports our measured ratio).
    pub fn paper_params(&self) -> usize {
        match self {
            BackboneKind::AlexNet => alexnet::descriptor()
                .layers
                .iter()
                .take(13) // conv stack only (FC layers are classifier-only)
                .map(|l| l.params())
                .sum(),
            BackboneKind::ResNet50 => {
                resnet::descriptor(resnet::ResNetDepth::R50, 224, 224).total_params()
            }
            BackboneKind::SkyNet => {
                let cfg = SkyNetConfig::new(Variant::C, Act::Relu6);
                skynet::features_descriptor(&cfg, 160, 320).total_params()
            }
        }
    }

    /// Builds the reduced-scale feature extractor (stride 8); returns the
    /// network and its output channel count. `div` scales widths down for
    /// CPU training.
    pub fn build(&self, div: usize, rng: &mut SkyRng) -> (Sequential, usize) {
        match self {
            BackboneKind::AlexNet => alexnet::features(div, rng),
            BackboneKind::ResNet50 => resnet::features(resnet::ResNetDepth::R50, div, rng),
            BackboneKind::SkyNet => {
                let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(div.max(1));
                skynet::features(&cfg, rng)
            }
        }
    }

    /// Relative single-frame inference cost at reduced scale, measured in
    /// parameters (a cheap proxy used only by tests; FPS is measured for
    /// real by the evaluation loop).
    pub fn reduced_params(&self, div: usize) -> usize {
        let mut rng = SkyRng::new(0);
        let (mut net, _) = self.build(div, &mut rng);
        net.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::Mode;
    use skynet_tensor::{Shape, Tensor};

    #[test]
    fn paper_scale_size_ratio_matches_section7() {
        let r50 = BackboneKind::ResNet50.paper_params() as f64;
        let sky = BackboneKind::SkyNet.paper_params() as f64;
        let ratio = r50 / sky;
        // §7 reports 37.20× smaller parameter size; our backbone-only
        // counts land in the same regime (the exact paper figure includes
        // the tracker necks).
        assert!(ratio > 30.0 && ratio < 90.0, "ratio {ratio}");
    }

    #[test]
    fn all_backbones_produce_stride8_features() {
        for kind in [
            BackboneKind::AlexNet,
            BackboneKind::ResNet50,
            BackboneKind::SkyNet,
        ] {
            let mut rng = SkyRng::new(1);
            let (mut net, c) = kind.build(16, &mut rng);
            let x = Tensor::zeros(Shape::new(1, 3, 32, 32));
            let y = net.forward(&x, Mode::Eval).unwrap();
            assert_eq!(y.shape(), Shape::new(1, c, 4, 4), "{}", kind.name());
        }
    }

    #[test]
    fn skynet_is_the_smallest_at_equal_divisor() {
        let sky = BackboneKind::SkyNet.reduced_params(8);
        let r50 = BackboneKind::ResNet50.reduced_params(8);
        assert!(sky < r50, "{sky} vs {r50}");
    }
}
