//! A SiamMask-style tracker (Wang et al., 2019; §7.2).
//!
//! SiamMask augments the Siamese tracker with a segmentation branch. Our
//! synthetic stand-in predicts a coarse occupancy grid over the search
//! window (the synthetic ground truth is derived from the box, the
//! quantity the GOT-10k protocol scores); at inference the thresholded
//! grid's bounding rectangle refines the box estimate, which is where the
//! paper's accuracy edge over SiamRPN++ comes from.

use crate::siamrpn::{SiamConfig, SiamRpn};
use skynet_core::BBox;
use skynet_nn::{Conv2d, Layer, Mode, Param, Sgd};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng, Result, Tensor};

/// Edge of the predicted occupancy grid (per response map).
pub const MASK_GRID: usize = 4;

/// The SiamMask-style tracker: a [`SiamRpn`] plus a mask branch.
pub struct SiamMask {
    /// The underlying Siamese tracker (shared backbone + heads).
    pub rpn: SiamRpn,
    mask_head: Conv2d,
    /// Blend factor between the RPN box and the mask-derived box.
    pub mask_blend: f32,
}

impl SiamMask {
    /// Builds a tracker with fresh weights.
    pub fn new(cfg: SiamConfig) -> Self {
        let rpn = SiamRpn::new(cfg);
        let mut rng = SkyRng::new(cfg.seed ^ 0xA5);
        let feat_c = rpn.feature_channels();
        SiamMask {
            rpn,
            mask_head: Conv2d::new(
                feat_c,
                MASK_GRID * MASK_GRID,
                ConvGeometry::pointwise(),
                &mut rng,
            ),
            mask_blend: 0.35,
        }
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.rpn.visit_params(f);
        self.mask_head.visit_params(f);
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.rpn.param_count() + self.mask_head.param_count()
    }

    /// One training step on a frame pair: the RPN losses plus the mask
    /// branch trained against the box-occupancy grid of the search
    /// window. Returns the combined loss.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn train_pair(
        &mut self,
        frame_z: &Tensor,
        box_z: &BBox,
        frame_x: &Tensor,
        box_x: &BBox,
    ) -> Result<f32> {
        // RPN part (backbone learns through it).
        let rpn_loss = self.rpn.train_pair(frame_z, box_z, frame_x, box_x)?;
        // Mask part on a fresh (eval-mode) feature extraction of the same
        // search window; only the mask head trains here, keeping the two
        // branch updates independent like the paper's multi-task loss.
        let cfg = *self.rpn.config();
        let half_z = cfg.context * box_z.w.max(box_z.h);
        let half_x = half_z * cfg.search_px as f32 / cfg.exemplar_px as f32;
        let patch =
            skynet_data::got::crop_patch(frame_x, box_z.cx, box_z.cy, half_x, cfg.search_px);
        let feat_x = self.rpn_backbone_forward(&patch)?;
        let mask = self.mask_head.forward(&feat_x, Mode::Train)?;
        // Pool the per-position logits into one grid by averaging.
        let ms = mask.shape();
        let plane = ms.plane() as f32;
        let mut avg = [0.0f32; MASK_GRID * MASK_GRID];
        for (g, a) in avg.iter_mut().enumerate() {
            for y in 0..ms.h {
                for x in 0..ms.w {
                    *a += mask.at(0, g, y, x);
                }
            }
            *a /= plane;
        }
        let target = occupancy_grid(box_x, box_z.cx, box_z.cy, half_x);
        let mut loss = 0.0f32;
        let mut g_mask = Tensor::zeros(ms);
        for g in 0..MASK_GRID * MASK_GRID {
            let s = 1.0 / (1.0 + (-avg[g]).exp());
            let d = s - target[g];
            loss += d * d;
            let gshare = 2.0 * d * s * (1.0 - s) / plane;
            for y in 0..ms.h {
                for x in 0..ms.w {
                    *g_mask.at_mut(0, g, y, x) = gshare;
                }
            }
        }
        let _ = self.mask_head.backward(&g_mask)?;
        Ok(rpn_loss + loss)
    }

    fn rpn_backbone_forward(&mut self, patch: &Tensor) -> Result<Tensor> {
        // Access the backbone through the RPN's training path: a second
        // eval-mode forward does not disturb its caches.
        self.rpn.backbone_forward_eval(patch)
    }

    /// Initializes tracking (GOT-10k one-shot protocol).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn init(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()> {
        self.rpn.init(frame, bbox)
    }

    /// Tracks into the next frame; the mask-derived box refines the RPN
    /// estimate.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn update(&mut self, frame: &Tensor) -> Result<BBox> {
        // One backbone pass per frame: the response feeds both the RPN
        // state advance and the mask branch. The mask needs the search
        // geometry *before* the state advances.
        let (resp, feat_x, half_x, peak) = self.rpn.respond(frame)?;
        let prev = self.rpn.state_center().expect("init before update");
        let rpn_box = self.rpn.advance(&resp, half_x, peak)?;
        let mask = self.mask_head.forward(&feat_x, Mode::Eval)?;
        let ms = mask.shape();
        let plane = ms.plane() as f32;
        // Average per-grid logits and threshold at 0.5 probability.
        let mut active = Vec::new();
        for g in 0..MASK_GRID * MASK_GRID {
            let mut a = 0.0;
            for y in 0..ms.h {
                for x in 0..ms.w {
                    a += mask.at(0, g, y, x);
                }
            }
            let p = 1.0 / (1.0 + (-a / plane).exp());
            if p > 0.5 {
                active.push(g);
            }
        }
        if active.is_empty() {
            return Ok(rpn_box);
        }
        // Bounding rectangle of active cells, mapped to frame coords.
        let (mut gy1, mut gx1, mut gy2, mut gx2) = (MASK_GRID, MASK_GRID, 0usize, 0usize);
        for &g in &active {
            let (gy, gx) = (g / MASK_GRID, g % MASK_GRID);
            gy1 = gy1.min(gy);
            gx1 = gx1.min(gx);
            gy2 = gy2.max(gy + 1);
            gx2 = gx2.max(gx + 1);
        }
        let cell = 2.0 * half_x / MASK_GRID as f32;
        let mask_box = BBox::new(
            prev.0 + ((gx1 + gx2) as f32 / 2.0 - MASK_GRID as f32 / 2.0) * cell,
            prev.1 + ((gy1 + gy2) as f32 / 2.0 - MASK_GRID as f32 / 2.0) * cell,
            (gx2 - gx1) as f32 * cell,
            (gy2 - gy1) as f32 * cell,
        );
        let b = self.mask_blend;
        let refined = BBox::new(
            rpn_box.cx * (1.0 - b) + mask_box.cx * b,
            rpn_box.cy * (1.0 - b) + mask_box.cy * b,
            rpn_box.w * (1.0 - b) + mask_box.w * b,
            rpn_box.h * (1.0 - b) + mask_box.h * b,
        )
        .clamp_to_frame();
        self.rpn.overwrite_state(&refined);
        Ok(refined)
    }
}

impl std::fmt::Debug for SiamMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SiamMask({:?})", self.rpn)
    }
}

/// Ground-truth occupancy grid of `bbox` over a search window centered at
/// `(cx, cy)` with half-extent `half`: cell = 1 when its center lies
/// inside the box.
pub fn occupancy_grid(bbox: &BBox, cx: f32, cy: f32, half: f32) -> Vec<f32> {
    let (x1, y1, x2, y2) = bbox.corners();
    let mut grid = vec![0.0f32; MASK_GRID * MASK_GRID];
    for gy in 0..MASK_GRID {
        for gx in 0..MASK_GRID {
            let fx = cx + ((gx as f32 + 0.5) / MASK_GRID as f32 - 0.5) * 2.0 * half;
            let fy = cy + ((gy as f32 + 0.5) / MASK_GRID as f32 - 0.5) * 2.0 * half;
            if fx >= x1 && fx <= x2 && fy >= y1 && fy <= y2 {
                grid[gy * MASK_GRID + gx] = 1.0;
            }
        }
    }
    grid
}

/// Trains a SiamMask tracker over sequences (same pairing protocol as
/// [`crate::siamrpn::train_on_sequences`]); returns the final epoch's
/// mean loss.
///
/// # Errors
///
/// Propagates tensor shape errors.
pub fn train_on_sequences(
    tracker: &mut SiamMask,
    sequences: &[skynet_data::got::TrackSequence],
    epochs: usize,
    opt: &mut Sgd,
    seed: u64,
) -> Result<f32> {
    let mut rng = SkyRng::new(seed);
    let mut last = 0.0;
    for _ in 0..epochs {
        let mut total = 0.0;
        let mut count = 0;
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            let i = rng.below(seq.len() - 1);
            let j = (i + 1 + rng.below((seq.len() - i - 1).min(4))).min(seq.len() - 1);
            total +=
                tracker.train_pair(&seq.frames[i], &seq.boxes[i], &seq.frames[j], &seq.boxes[j])?;
            opt.step_visit(&mut |f| tracker.visit_params(f));
            count += 1;
        }
        last = total / count.max(1) as f32;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::BackboneKind;
    use skynet_data::got::{GotConfig, GotGen};

    fn tiny_cfg() -> SiamConfig {
        SiamConfig {
            div: 32,
            ..SiamConfig::new(BackboneKind::SkyNet)
        }
    }

    #[test]
    fn occupancy_grid_marks_object_cells() {
        // Box covering the window's top-left quadrant.
        let bbox = BBox::new(0.4, 0.4, 0.2, 0.2);
        let grid = occupancy_grid(&bbox, 0.5, 0.5, 0.2);
        // Window spans [0.3, 0.7]²; box spans [0.3, 0.5]² → the top-left
        // 2×2 cells are inside.
        assert_eq!(grid[0], 1.0);
        assert_eq!(grid[1], 1.0);
        assert_eq!(grid[4], 1.0);
        assert_eq!(grid[5], 1.0);
        assert_eq!(grid[3], 0.0);
        assert_eq!(grid[15], 0.0);
    }

    #[test]
    fn init_update_produces_valid_boxes() {
        let mut gen = GotGen::new(GotConfig::default());
        let seq = gen.sequence();
        let mut tracker = SiamMask::new(tiny_cfg());
        tracker.init(&seq.frames[0], &seq.boxes[0]).unwrap();
        for frame in &seq.frames[1..4] {
            let b = tracker.update(frame).unwrap();
            assert!(b.w > 0.0 && b.h > 0.0);
        }
    }

    #[test]
    fn training_runs_and_loss_is_finite() {
        let mut gen = GotGen::new(GotConfig {
            seq_len: 5,
            ..GotConfig::default()
        });
        let seqs = gen.generate(3);
        let mut tracker = SiamMask::new(tiny_cfg());
        let mut opt = Sgd::new(skynet_nn::LrSchedule::Constant(1e-3), 0.9, 0.0);
        let loss = train_on_sequences(&mut tracker, &seqs, 2, &mut opt, 3).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }
}
