//! Depth-wise cross-correlation (the SiamRPN++ correlation operator).
//!
//! The exemplar feature map acts as a per-channel filter slid over the
//! search feature map — exactly a depth-wise convolution with no padding,
//! so the kernels from [`skynet_tensor::dwconv`] do the work. Backward
//! returns gradients for **both** operands.

use skynet_tensor::conv::ConvGeometry;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward};
use skynet_tensor::{Result, Shape, Tensor, TensorError};

fn geometry(z: Shape) -> ConvGeometry {
    ConvGeometry::new(z.h.max(z.w), 1, 0)
}

fn check(search: Shape, exemplar: Shape) -> Result<()> {
    if search.c != exemplar.c || exemplar.n != 1 || search.n != 1 {
        return Err(TensorError::ShapeMismatch {
            op: "xcorr",
            expected: format!("single-batch maps with {} channels", search.c),
            got: exemplar.to_string(),
        });
    }
    if exemplar.h != exemplar.w || exemplar.h > search.h || exemplar.w > search.w {
        return Err(TensorError::InvalidDimension {
            op: "xcorr",
            detail: format!(
                "exemplar {}×{} must be square and fit search {}×{}",
                exemplar.h, exemplar.w, search.h, search.w
            ),
        });
    }
    Ok(())
}

/// Valid depth-wise cross-correlation of a `1×C×hx×wx` search map with a
/// square `1×C×hz×hz` exemplar map → `1×C×(hx−hz+1)×(wx−hz+1)`.
///
/// # Errors
///
/// Returns a [`TensorError`] when channel counts differ, batches aren't 1
/// or the exemplar doesn't fit inside the search map.
pub fn xcorr(search: &Tensor, exemplar: &Tensor) -> Result<Tensor> {
    let (sx, sz) = (search.shape(), exemplar.shape());
    check(sx, sz)?;
    let weight = exemplar.reshape(Shape::new(sz.c, 1, sz.h, sz.w))?;
    dwconv2d(search, &weight, None, geometry(sz))
}

/// Gradients of [`xcorr`] with respect to both operands.
#[derive(Debug, Clone)]
pub struct XcorrGrads {
    /// Gradient w.r.t. the search feature map.
    pub search: Tensor,
    /// Gradient w.r.t. the exemplar feature map.
    pub exemplar: Tensor,
}

/// Backward pass of [`xcorr`].
///
/// # Errors
///
/// Returns a [`TensorError`] when `grad_out` doesn't match the forward
/// output shape.
pub fn xcorr_backward(search: &Tensor, exemplar: &Tensor, grad_out: &Tensor) -> Result<XcorrGrads> {
    let (sx, sz) = (search.shape(), exemplar.shape());
    check(sx, sz)?;
    let weight = exemplar.reshape(Shape::new(sz.c, 1, sz.h, sz.w))?;
    let grads = dwconv2d_backward(search, &weight, grad_out, geometry(sz))?;
    Ok(XcorrGrads {
        search: grads.input,
        exemplar: grads.weight.reshape(sz)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::rng::SkyRng;

    fn random(shape: Shape, seed: u64) -> Tensor {
        let mut rng = SkyRng::new(seed);
        Tensor::from_vec(
            shape,
            (0..shape.numel()).map(|_| rng.normal(0.0, 1.0)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn response_peaks_where_exemplar_matches() {
        // Plant the exemplar inside the search map; the response argmax
        // must be at the plant position.
        let z = random(Shape::new(1, 4, 3, 3), 1);
        let mut x = Tensor::zeros(Shape::new(1, 4, 8, 8));
        let (py, px) = (2usize, 4usize);
        for c in 0..4 {
            for y in 0..3 {
                for w in 0..3 {
                    *x.at_mut(0, c, py + y, px + w) = z.at(0, c, y, w);
                }
            }
        }
        let r = xcorr(&x, &z).unwrap();
        assert_eq!(r.shape(), Shape::new(1, 4, 6, 6));
        // Sum response over channels, find argmax.
        let mut best = (0usize, 0usize);
        let mut best_v = f32::MIN;
        for y in 0..6 {
            for w in 0..6 {
                let v: f32 = (0..4).map(|c| r.at(0, c, y, w)).sum();
                if v > best_v {
                    best_v = v;
                    best = (y, w);
                }
            }
        }
        assert_eq!(best, (py, px));
    }

    #[test]
    fn output_shape_is_valid_correlation() {
        let x = random(Shape::new(1, 2, 8, 10), 2);
        let z = random(Shape::new(1, 2, 4, 4), 3);
        let r = xcorr(&x, &z).unwrap();
        assert_eq!(r.shape(), Shape::new(1, 2, 5, 7));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let x = random(Shape::new(1, 2, 5, 5), 4);
        let z = random(Shape::new(1, 2, 3, 3), 5);
        let r = xcorr(&x, &z).unwrap();
        let go = Tensor::ones(r.shape());
        let grads = xcorr_backward(&x, &z, &go).unwrap();
        let eps = 1e-2f32;
        // Probe a few coordinates of each operand.
        for idx in [0usize, 13, 31, 49] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = xcorr(&xp, &z).unwrap().sum();
            xp.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = xcorr(&xp, &z).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grads.search.as_slice()[idx]).abs() < 1e-2);
        }
        for idx in [0usize, 7, 17] {
            let mut zp = z.clone();
            zp.as_mut_slice()[idx] += eps;
            let lp = xcorr(&x, &zp).unwrap().sum();
            zp.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = xcorr(&x, &zp).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grads.exemplar.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn rejects_mismatched_operands() {
        let x = random(Shape::new(1, 2, 8, 8), 6);
        let z_badc = random(Shape::new(1, 3, 3, 3), 7);
        assert!(xcorr(&x, &z_badc).is_err());
        let z_toobig = random(Shape::new(1, 2, 9, 9), 8);
        assert!(xcorr(&x, &z_toobig).is_err());
    }
}
