//! # skynet-track
//!
//! The §7 tracking extension: Siamese trackers whose backbone is swappable
//! between SkyNet, ResNet-50 and AlexNet, evaluated with the GOT-10k
//! metrics on the synthetic sequences from `skynet-data`.
//!
//! * [`backbone`] — the three backbone choices of Tables 8–9, with
//!   paper-scale parameter counts for the 37.2× size comparison;
//! * [`xcorr`] — depth-wise cross-correlation between exemplar and search
//!   features (implemented on the depth-wise convolution kernels);
//! * [`siamfc`] — a SiamFC-style baseline (channel-summed correlation,
//!   scale pyramid, no learned heads) — the ablation below SiamRPN++;
//! * [`siamrpn`] — a SiamRPN++-style tracker: correlation + classification
//!   and box-regression heads, trained on frame pairs;
//! * [`siammask`] — a SiamMask-style tracker adding a mask branch whose
//!   output refines the reported box;
//! * [`metrics`] — GOT-10k Average Overlap (AO) and Success Rate (SR@t);
//! * [`eval`] — the online tracking loop and the AO/SR/FPS report.

#![deny(missing_docs)]

pub mod backbone;
pub mod eval;
pub mod metrics;
pub mod siamfc;
pub mod siammask;
pub mod siamrpn;
pub mod xcorr;
