//! A SiamFC-style baseline tracker (Tao et al. 2016 / the
//! correlation-filter lineage the paper cites in §2).
//!
//! The simplest Siamese formulation: the response map is the depth-wise
//! cross-correlation **summed over channels** (no learned heads), trained
//! with a logistic loss on the response; scale is handled with a
//! three-scale pyramid search instead of a regression branch. Included as
//! the architectural ablation below SiamRPN++: it shows what the RPN
//! heads buy.

use crate::backbone::BackboneKind;
use crate::siamrpn::{cell_to_displacement, displacement_to_cell, hann2};
use crate::xcorr::{xcorr, xcorr_backward};
use skynet_core::BBox;
use skynet_data::got::crop_patch;
use skynet_nn::{Layer, Mode, Param, Sequential};
use skynet_tensor::{rng::SkyRng, Result, Shape, Tensor};

/// SiamFC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiamFcConfig {
    /// Backbone choice.
    pub backbone: BackboneKind,
    /// Width divisor for the reduced-scale backbone.
    pub div: usize,
    /// Exemplar patch edge in pixels.
    pub exemplar_px: usize,
    /// Search patch edge in pixels.
    pub search_px: usize,
    /// Exemplar crop half-extent multiplier.
    pub context: f32,
    /// Hann-window influence at inference.
    pub window_influence: f32,
    /// Scale-pyramid step (three scales: 1/s, 1, s).
    pub scale_step: f32,
    /// Multiplicative penalty on the off-scale responses.
    pub scale_penalty: f32,
    /// Fixed gain applied to the channel-averaged response before the
    /// logistic (the original SiamFC applies an affine rescale; without
    /// it the averaged correlations sit in the shallow part of the
    /// sigmoid and gradients vanish).
    pub response_gain: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SiamFcConfig {
    /// Default configuration for a backbone.
    pub fn new(backbone: BackboneKind) -> Self {
        SiamFcConfig {
            backbone,
            div: 8,
            exemplar_px: 16,
            search_px: 48,
            context: 1.0,
            window_influence: 0.35,
            scale_step: 1.04,
            scale_penalty: 0.97,
            response_gain: 6.0,
            seed: 0x5FC,
        }
    }
}

#[derive(Debug, Clone)]
struct FcState {
    feat_z: Tensor,
    center: (f32, f32),
    size: (f32, f32),
}

/// The SiamFC-style tracker.
pub struct SiamFc {
    cfg: SiamFcConfig,
    backbone: Sequential,
    state: Option<FcState>,
}

impl SiamFc {
    /// Builds a tracker with fresh weights.
    pub fn new(cfg: SiamFcConfig) -> Self {
        let mut rng = SkyRng::new(cfg.seed);
        let (backbone, _) = cfg.backbone.build(cfg.div, &mut rng);
        SiamFc {
            cfg,
            backbone,
            state: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SiamFcConfig {
        &self.cfg
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(f);
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.backbone.param_count()
    }

    fn features(
        &mut self,
        frame: &Tensor,
        cx: f32,
        cy: f32,
        half: f32,
        px: usize,
        mode: Mode,
    ) -> Result<Tensor> {
        let patch = crop_patch(frame, cx, cy, half, px);
        self.backbone.forward(&patch, mode)
    }

    /// Channel-summed response of a search feature map against a
    /// template, scaled by `gain`.
    fn response(feat_x: &Tensor, feat_z: &Tensor, gain: f32) -> Result<Tensor> {
        let r = xcorr(feat_x, feat_z)?;
        let rs = r.shape();
        let mut out = Tensor::zeros(Shape::new(1, 1, rs.h, rs.w));
        let norm = gain / rs.c as f32;
        for c in 0..rs.c {
            for y in 0..rs.h {
                for x in 0..rs.w {
                    *out.at_mut(0, 0, y, x) += r.at(0, c, y, x) * norm;
                }
            }
        }
        Ok(out)
    }

    /// One training step on a frame pair with the logistic response loss;
    /// returns the loss. The caller applies the optimizer step.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn train_pair(
        &mut self,
        frame_z: &Tensor,
        box_z: &BBox,
        frame_x: &Tensor,
        box_x: &BBox,
    ) -> Result<f32> {
        let half_z = self.cfg.context * box_z.w.max(box_z.h);
        let half_x = half_z * self.cfg.search_px as f32 / self.cfg.exemplar_px as f32;
        let feat_z = self.features(
            frame_z,
            box_z.cx,
            box_z.cy,
            half_z,
            self.cfg.exemplar_px,
            Mode::Eval,
        )?;
        let feat_x = self.features(
            frame_x,
            box_z.cx,
            box_z.cy,
            half_x,
            self.cfg.search_px,
            Mode::Train,
        )?;
        let resp = Self::response(&feat_x, &feat_z, self.cfg.response_gain)?;
        let rs = resp.shape();
        let (ty, tx) =
            displacement_to_cell(box_x.cx - box_z.cx, box_x.cy - box_z.cy, half_x, rs.h, rs.w);
        let mut loss = 0.0f32;
        let mut g_sum = Tensor::zeros(rs);
        for y in 0..rs.h {
            for x in 0..rs.w {
                let v = resp.at(0, 0, y, x);
                let s = (1.0 / (1.0 + (-v).exp())).clamp(1e-6, 1.0 - 1e-6);
                if (y, x) == (ty, tx) {
                    loss += -4.0 * s.ln();
                    *g_sum.at_mut(0, 0, y, x) = 4.0 * (s - 1.0);
                } else {
                    loss += -(1.0 - s).ln();
                    *g_sum.at_mut(0, 0, y, x) = s;
                }
            }
        }
        // Broadcast the summed-response gradient back over channels
        // (through the same gain/mean scaling as the forward pass).
        let fz = feat_z.shape();
        let mut g_resp = Tensor::zeros(Shape::new(1, fz.c, rs.h, rs.w));
        let norm = self.cfg.response_gain / fz.c as f32;
        for c in 0..fz.c {
            for y in 0..rs.h {
                for x in 0..rs.w {
                    *g_resp.at_mut(0, c, y, x) = g_sum.at(0, 0, y, x) * norm;
                }
            }
        }
        let grads = xcorr_backward(&feat_x, &feat_z, &g_resp)?;
        let _ = self.backbone.backward(&grads.search)?;
        Ok(loss / (rs.h * rs.w) as f32)
    }

    /// Initializes tracking on the first frame.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn init(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()> {
        let half_z = self.cfg.context * bbox.w.max(bbox.h);
        let feat_z = self.features(
            frame,
            bbox.cx,
            bbox.cy,
            half_z,
            self.cfg.exemplar_px,
            Mode::Eval,
        )?;
        self.state = Some(FcState {
            feat_z,
            center: (bbox.cx, bbox.cy),
            size: (bbox.w, bbox.h),
        });
        Ok(())
    }

    /// Tracks into the next frame using the three-scale pyramid.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    ///
    /// # Panics
    ///
    /// Panics if [`SiamFc::init`] has not been called.
    pub fn update(&mut self, frame: &Tensor) -> Result<BBox> {
        let state = self.state.clone().expect("init before update");
        let gamma = self.cfg.window_influence;
        let scales = [1.0 / self.cfg.scale_step, 1.0, self.cfg.scale_step];
        let mut best = (
            0usize,
            0usize,
            1.0f32,
            f32::MIN,
            0.3f32,
            Shape::new(1, 1, 1, 1),
        );
        for (si, &scale) in scales.iter().enumerate() {
            let half_z = self.cfg.context * (state.size.0 * scale).max(state.size.1 * scale);
            let half_x = half_z * self.cfg.search_px as f32 / self.cfg.exemplar_px as f32;
            let feat_x = self.features(
                frame,
                state.center.0,
                state.center.1,
                half_x,
                self.cfg.search_px,
                Mode::Eval,
            )?;
            let resp = Self::response(&feat_x, &state.feat_z, self.cfg.response_gain)?;
            let rs = resp.shape();
            let penalty = if si == 1 { 1.0 } else { self.cfg.scale_penalty };
            for y in 0..rs.h {
                for x in 0..rs.w {
                    let p = 1.0 / (1.0 + (-resp.at(0, 0, y, x)).exp());
                    let v = ((1.0 - gamma) * p + gamma * hann2(y, x, rs.h, rs.w)) * penalty;
                    if v > best.3 {
                        best = (y, x, scale, v, half_x, rs);
                    }
                }
            }
        }
        let (by, bx, scale, _, half_x, rs) = best;
        let (dx, dy) = cell_to_displacement(by, bx, half_x, rs.h, rs.w);
        let state = self.state.as_mut().expect("init before update");
        let w = (state.size.0 * scale).clamp(0.02, 0.9);
        let h = (state.size.1 * scale).clamp(0.02, 0.9);
        let cx = (state.center.0 + dx).clamp(w / 2.0, 1.0 - w / 2.0);
        let cy = (state.center.1 + dy).clamp(h / 2.0, 1.0 - h / 2.0);
        state.center = (cx, cy);
        state.size = (w, h);
        Ok(BBox::new(cx, cy, w, h))
    }
}

impl std::fmt::Debug for SiamFc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SiamFC({})", self.cfg.backbone.name())
    }
}

impl crate::eval::Tracker for SiamFc {
    fn start(&mut self, frame: &Tensor, bbox: &BBox) -> Result<()> {
        self.init(frame, bbox)
    }

    fn step(&mut self, frame: &Tensor) -> Result<BBox> {
        self.update(frame)
    }

    fn label(&self) -> String {
        format!("SiamFC/{}", self.cfg.backbone.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use skynet_data::got::{GotConfig, GotGen};

    fn tiny() -> SiamFcConfig {
        SiamFcConfig {
            div: 32,
            ..SiamFcConfig::new(BackboneKind::SkyNet)
        }
    }

    #[test]
    fn tracks_without_panicking_and_reports() {
        let mut gen = GotGen::new(GotConfig {
            seq_len: 6,
            ..GotConfig::default()
        });
        let seqs = gen.generate(2);
        let mut tracker = SiamFc::new(tiny());
        let report = evaluate(&mut tracker, &seqs).unwrap();
        assert!(report.label.contains("SiamFC"));
        assert!((0.0..=1.0).contains(&report.metrics.ao));
    }

    #[test]
    fn training_overfits_a_fixed_pair() {
        // One repeated pair keeps the batch-norm statistics stationary
        // (SiamFC steps per pair, so varying pairs at batch size 1 is
        // noisy by construction); the logistic loss must fall steadily.
        // The lr is deliberately cool: with momentum 0.9 a hotter one
        // oscillates on this tiny landscape and whether the final step
        // lands low becomes a coin flip on rounding-level perturbations.
        let mut gen = GotGen::new(GotConfig {
            seq_len: 6,
            distractor_prob: 0.0,
            ..GotConfig::default()
        });
        let seq = gen.sequence();
        let mut tracker = SiamFc::new(tiny());
        let mut opt = skynet_nn::Sgd::new(skynet_nn::LrSchedule::Constant(5e-3), 0.9, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let loss = tracker
                .train_pair(&seq.frames[0], &seq.boxes[0], &seq.frames[2], &seq.boxes[2])
                .unwrap();
            opt.step_visit(&mut |f| tracker.visit_params(f));
            first.get_or_insert(loss);
            last = loss;
        }
        // The one-hot target conflicts with neighbouring cells that also
        // contain the object (the box spans ~a cell), which lower-bounds
        // the loss; require a clear but modest decrease.
        assert!(last < first.unwrap() * 0.96, "loss {first:?} -> {last}");
    }

    #[test]
    fn fewer_params_than_siamrpn_same_backbone() {
        let mut fc = SiamFc::new(tiny());
        let mut rpn = crate::siamrpn::SiamRpn::new(crate::siamrpn::SiamConfig {
            div: 32,
            ..crate::siamrpn::SiamConfig::new(BackboneKind::SkyNet)
        });
        assert!(fc.param_count() < rpn.param_count());
    }
}
