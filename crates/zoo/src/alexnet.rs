//! AlexNet (Krizhevsky et al., 2012).
//!
//! Two roles in the reproduction:
//!
//! * the **quantization subject** of Fig. 2(a) — a mini-AlexNet classifier
//!   whose parameter/feature-map sizes we sweep through fixed-point
//!   schemes, with a paper-scale descriptor whose float32 parameter
//!   footprint (~238 MB) matches the figure's bubble;
//! * the **fast Siamese baseline** of Table 8 (SiamRPN++ with an AlexNet
//!   backbone).

use skynet_core::desc::{LayerDesc, NetDesc};
use skynet_nn::{Act, Activation, Conv2d, Dropout, GlobalAvgPool, Linear, MaxPool2d, Sequential};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

/// Paper-scale AlexNet descriptor **including** the fully-connected
/// layers, expressed as convolutions whose kernel covers the full spatial
/// extent (the standard conv-isation of FC layers). The float32 parameter
/// footprint is ≈ 238 MB, matching the Fig. 2(a) bubble.
pub fn descriptor() -> NetDesc {
    NetDesc::new(
        3,
        227,
        227,
        vec![
            LayerDesc::Conv {
                in_c: 3,
                out_c: 96,
                k: 11,
                s: 4,
                p: 0,
            },
            LayerDesc::Act { c: 96 },
            LayerDesc::Pool { c: 96, k: 2 },
            LayerDesc::Conv {
                in_c: 96,
                out_c: 256,
                k: 5,
                s: 1,
                p: 2,
            },
            LayerDesc::Act { c: 256 },
            LayerDesc::Pool { c: 256, k: 2 },
            LayerDesc::Conv {
                in_c: 256,
                out_c: 384,
                k: 3,
                s: 1,
                p: 1,
            },
            LayerDesc::Act { c: 384 },
            LayerDesc::Conv {
                in_c: 384,
                out_c: 384,
                k: 3,
                s: 1,
                p: 1,
            },
            LayerDesc::Act { c: 384 },
            LayerDesc::Conv {
                in_c: 384,
                out_c: 256,
                k: 3,
                s: 1,
                p: 1,
            },
            LayerDesc::Act { c: 256 },
            LayerDesc::Pool { c: 256, k: 2 },
            // FC 9216→4096, 4096→4096, 4096→1000 as full-extent convs
            // (input here is 6×6 after the pools at 227²).
            LayerDesc::Conv {
                in_c: 256,
                out_c: 4096,
                k: 6,
                s: 1,
                p: 0,
            },
            LayerDesc::Act { c: 4096 },
            LayerDesc::Conv {
                in_c: 4096,
                out_c: 4096,
                k: 1,
                s: 1,
                p: 0,
            },
            LayerDesc::Act { c: 4096 },
            LayerDesc::Conv {
                in_c: 4096,
                out_c: 1000,
                k: 1,
                s: 1,
                p: 0,
            },
        ],
    )
}

/// A trainable mini-AlexNet classifier for `size×size` inputs and
/// `classes` outputs (the Fig. 2(a) experiment runs it on the synthetic
/// shape set). Preserves AlexNet's 5-conv + 3-FC profile (FC₂/FC₃ shrunk,
/// GAP instead of the 6×6 flatten) so the parameter mass still lives in
/// the FC block — the property Fig. 2(a) hinges on.
pub fn classifier(classes: usize, rng: &mut SkyRng) -> Sequential {
    let mut seq = Sequential::empty();
    let widths = [24usize, 48, 96, 96, 64];
    // Conv stack.
    seq.push(Box::new(Conv2d::new(
        3,
        widths[0],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(MaxPool2d::new(2)));
    seq.push(Box::new(Conv2d::new(
        widths[0],
        widths[1],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(MaxPool2d::new(2)));
    seq.push(Box::new(Conv2d::new(
        widths[1],
        widths[2],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(Conv2d::new(
        widths[2],
        widths[3],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(Conv2d::new(
        widths[3],
        widths[4],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(GlobalAvgPool::new()));
    // FC block.
    seq.push(Box::new(Linear::new(widths[4], 256, rng)));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(Dropout::new(0.3, 0xD20)));
    seq.push(Box::new(Linear::new(256, 128, rng)));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(Linear::new(128, classes, rng)));
    seq
}

/// Reduced-scale AlexNet feature extractor (stride 8) for the Siamese
/// trackers; returns the network and its output channel count.
pub fn features(div: usize, rng: &mut SkyRng) -> (Sequential, usize) {
    let widths: Vec<usize> = [96usize, 256, 384, 384, 256]
        .iter()
        .map(|w| (w / div).max(4))
        .collect();
    let mut seq = Sequential::empty();
    seq.push(Box::new(Conv2d::new(
        3,
        widths[0],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(MaxPool2d::new(2)));
    seq.push(Box::new(Conv2d::new(
        widths[0],
        widths[1],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(MaxPool2d::new(2)));
    seq.push(Box::new(Conv2d::new(
        widths[1],
        widths[2],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(Conv2d::new(
        widths[2],
        widths[3],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    seq.push(Box::new(MaxPool2d::new(2)));
    seq.push(Box::new(Conv2d::new(
        widths[3],
        widths[4],
        ConvGeometry::same3x3(),
        rng,
    )));
    seq.push(Box::new(Activation::new(Act::Relu)));
    let out = widths[4];
    (seq, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Layer, Mode};
    use skynet_tensor::{Shape, Tensor};

    #[test]
    fn paper_scale_footprint_matches_fig2a() {
        // Fig. 2(a): float32 parameters ≈ 237.9 MB. Standard AlexNet has
        // ~61 M parameters ⇒ 244 MB; accept ±5%.
        let params = descriptor().total_params() as f64;
        let mb = params * 4.0 / (1024.0 * 1024.0);
        assert!((220.0..260.0).contains(&mb), "{mb} MB");
        // FC layers dominate (the reason pruning papers target them).
        let fc: usize = descriptor()
            .layers
            .iter()
            .filter(|l| matches!(l, LayerDesc::Conv { k, .. } if *k == 6 || *k == 1))
            .map(|l| l.params())
            .sum();
        assert!(fc as f64 / params > 0.9);
    }

    #[test]
    fn classifier_output_shape() {
        let mut rng = SkyRng::new(0);
        let mut net = classifier(6, &mut rng);
        let x = Tensor::zeros(Shape::new(2, 3, 32, 32));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(2, 6, 1, 1));
    }

    #[test]
    fn classifier_fc_block_dominates_params() {
        let mut rng = SkyRng::new(1);
        let mut net = classifier(6, &mut rng);
        let total = net.param_count();
        // Conv stack ≈ 24·27+... ≈ 180k; FC ≈ 16k+33k... — at mini scale
        // the conv stack is larger; the *structural* property we need for
        // Fig. 2(a) is simply a nontrivial FC mass, so check > 10%.
        let fc = 64 * 256 + 256 + 256 * 128 + 128 + 128 * 6 + 6;
        assert!(fc * 10 > total, "fc {fc} of {total}");
    }

    #[test]
    fn features_stride_8() {
        let mut rng = SkyRng::new(2);
        let (mut net, c) = features(16, &mut rng);
        let x = Tensor::zeros(Shape::new(1, 3, 32, 32));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(1, c, 4, 4));
    }
}
