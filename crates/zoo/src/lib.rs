//! # skynet-zoo
//!
//! Baseline backbones the paper compares against:
//!
//! * [`resnet`] — ResNet-18/34/50 (Table 2 detection baselines; ResNet-50
//!   is also the SiamRPN++/SiamMask reference backbone of Tables 8–9),
//! * [`vgg`] — VGG-16 (Table 2),
//! * [`alexnet`] — AlexNet (the Fig. 2(a) quantization subject and the
//!   fast SiamRPN++ baseline of Table 8),
//! * [`mobilenet`] — a MobileNet-V1-style DW/PW chain (the compact-DNN
//!   family several DAC-SDC entries in Table 1 started from).
//!
//! Every family exposes three views:
//!
//! 1. a **paper-scale descriptor** ([`skynet_core::desc::NetDesc`]) whose
//!    parameter counts match the published sizes (used for Table 2's
//!    parameter column and the 37.2× comparison of §7),
//! 2. a **reduced-scale trainable detector** with overall stride 8 and the
//!    same 10-channel YOLO back-end as SkyNet, and
//! 3. a **reduced-scale feature extractor** for the Siamese trackers.

#![deny(missing_docs)]

pub mod alexnet;
pub mod mobilenet;
pub mod resnet;
pub mod vgg;
