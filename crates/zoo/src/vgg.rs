//! VGG-16 (Simonyan & Zisserman, 2014) — the Table 2 baseline with
//! 14.71 M backbone parameters.

use skynet_core::desc::{LayerDesc, NetDesc};
use skynet_core::skynet::HEAD_CHANNELS;
use skynet_nn::{Act, Activation, BatchNorm2d, Conv2d, MaxPool2d, Sequential};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

/// The 13-conv-layer VGG-16 plan: widths between pools.
pub const VGG16_PLAN: [&[usize]; 5] = [
    &[64, 64],
    &[128, 128],
    &[256, 256, 256],
    &[512, 512, 512],
    &[512, 512, 512],
];

/// Paper-scale conv-backbone descriptor (no classifier head).
pub fn descriptor(in_h: usize, in_w: usize) -> NetDesc {
    let mut layers = Vec::new();
    let mut in_c = 3usize;
    for stage in VGG16_PLAN {
        for &w in stage.iter() {
            layers.push(LayerDesc::Conv {
                in_c,
                out_c: w,
                k: 3,
                s: 1,
                p: 1,
            });
            layers.push(LayerDesc::Act { c: w });
            in_c = w;
        }
        layers.push(LayerDesc::Pool { c: in_c, k: 2 });
    }
    NetDesc::new(3, in_h, in_w, layers)
}

/// Reduced-scale VGG feature extractor with stride 8 (first three stages)
/// and widths divided by `div`; returns the network and its output channel
/// count. BN is added after each conv for trainability at small batch
/// sizes (the modern VGG-BN convention).
pub fn features(div: usize, rng: &mut SkyRng) -> (Sequential, usize) {
    let mut seq = Sequential::empty();
    let mut in_c = 3usize;
    // Stride 8 = three pooled stages; include stage 4 convs unpooled for
    // depth parity with the paper's full backbone use.
    for (i, stage) in VGG16_PLAN.iter().enumerate().take(4) {
        for &w in stage.iter() {
            let w = (w / div).max(4);
            seq.push(Box::new(Conv2d::new_no_bias(
                in_c,
                w,
                ConvGeometry::same3x3(),
                rng,
            )));
            seq.push(Box::new(BatchNorm2d::new(w)));
            seq.push(Box::new(Activation::new(Act::Relu)));
            in_c = w;
        }
        if i < 3 {
            seq.push(Box::new(MaxPool2d::new(2)));
        }
    }
    (seq, in_c)
}

/// Reduced-scale VGG detector with the shared 10-channel back-end.
pub fn detector(div: usize, rng: &mut SkyRng) -> Sequential {
    let (mut seq, out_c) = features(div, rng);
    seq.push(Box::new(Conv2d::new(
        out_c,
        HEAD_CHANNELS,
        ConvGeometry::pointwise(),
        rng,
    )));
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Layer, Mode};
    use skynet_tensor::{Shape, Tensor};

    #[test]
    fn paper_scale_params_match_table2() {
        // Table 2 lists VGG-16 at 14.71 M backbone parameters.
        let got = descriptor(224, 224).total_params() as f64;
        let want = 14.71e6;
        assert!((got - want).abs() / want < 0.02, "{got} vs {want}");
    }

    #[test]
    fn detector_shape() {
        let mut rng = SkyRng::new(0);
        let mut net = detector(16, &mut rng);
        let x = Tensor::zeros(Shape::new(1, 3, 24, 48));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(1, HEAD_CHANNELS, 3, 6));
    }

    #[test]
    fn features_backward_runs() {
        let mut rng = SkyRng::new(1);
        let (mut net, _) = features(32, &mut rng);
        let x = Tensor::ones(Shape::new(1, 3, 16, 16));
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }
}
