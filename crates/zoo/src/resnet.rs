//! ResNet-18/34/50 (He et al., 2016).
//!
//! Paper-scale descriptors reproduce the published backbone parameter
//! counts of Table 2 (11.18 M / 21.28 M / 23.51 M); reduced-scale builders
//! produce trainable detectors (stride 8, SkyNet's 10-channel back-end)
//! and tracker feature extractors.

use skynet_core::desc::{LayerDesc, NetDesc};
use skynet_core::skynet::HEAD_CHANNELS;
use skynet_nn::{Act, Activation, BatchNorm2d, Conv2d, Layer, Residual, Sequential};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

/// Which ResNet depth to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResNetDepth {
    /// ResNet-18: basic blocks, [2, 2, 2, 2].
    R18,
    /// ResNet-34: basic blocks, [3, 4, 6, 3].
    R34,
    /// ResNet-50: bottleneck blocks, [3, 4, 6, 3].
    R50,
}

impl ResNetDepth {
    /// Blocks per stage.
    pub fn blocks(&self) -> [usize; 4] {
        match self {
            ResNetDepth::R18 => [2, 2, 2, 2],
            ResNetDepth::R34 | ResNetDepth::R50 => [3, 4, 6, 3],
        }
    }

    /// Whether stages use bottleneck (1×1–3×3–1×1) blocks.
    pub fn bottleneck(&self) -> bool {
        matches!(self, ResNetDepth::R50)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ResNetDepth::R18 => "ResNet-18",
            ResNetDepth::R34 => "ResNet-34",
            ResNetDepth::R50 => "ResNet-50",
        }
    }
}

/// Paper-scale backbone descriptor (stem + 4 stages, no classifier head)
/// for an `in_h×in_w` input.
pub fn descriptor(depth: ResNetDepth, in_h: usize, in_w: usize) -> NetDesc {
    let mut layers = vec![
        // Stem: 7×7/2 conv, BN, ReLU, 3×3/2 max pool (approximated as 2×2
        // for the non-overlapping pool model; parameter count unaffected).
        LayerDesc::Conv {
            in_c: 3,
            out_c: 64,
            k: 7,
            s: 2,
            p: 3,
        },
        LayerDesc::Bn { c: 64 },
        LayerDesc::Act { c: 64 },
        LayerDesc::Pool { c: 64, k: 2 },
    ];
    let widths = [64usize, 128, 256, 512];
    let expansion = if depth.bottleneck() { 4 } else { 1 };
    let mut in_c = 64usize;
    for (stage, (&w, &n)) in widths.iter().zip(depth.blocks().iter()).enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            let out_c = w * expansion;
            if depth.bottleneck() {
                layers.extend([
                    LayerDesc::Conv {
                        in_c,
                        out_c: w,
                        k: 1,
                        s: 1,
                        p: 0,
                    },
                    LayerDesc::Bn { c: w },
                    LayerDesc::Act { c: w },
                    LayerDesc::Conv {
                        in_c: w,
                        out_c: w,
                        k: 3,
                        s: stride,
                        p: 1,
                    },
                    LayerDesc::Bn { c: w },
                    LayerDesc::Act { c: w },
                    LayerDesc::Conv {
                        in_c: w,
                        out_c,
                        k: 1,
                        s: 1,
                        p: 0,
                    },
                    LayerDesc::Bn { c: out_c },
                ]);
            } else {
                layers.extend([
                    LayerDesc::Conv {
                        in_c,
                        out_c,
                        k: 3,
                        s: stride,
                        p: 1,
                    },
                    LayerDesc::Bn { c: out_c },
                    LayerDesc::Act { c: out_c },
                    LayerDesc::Conv {
                        in_c: out_c,
                        out_c,
                        k: 3,
                        s: 1,
                        p: 1,
                    },
                    LayerDesc::Bn { c: out_c },
                ]);
            }
            if b == 0 && (stride != 1 || in_c != out_c) {
                // Projection shortcut.
                layers.extend([
                    LayerDesc::Conv {
                        in_c,
                        out_c,
                        k: 1,
                        s: stride,
                        p: 0,
                    },
                    LayerDesc::Bn { c: out_c },
                ]);
            }
            layers.push(LayerDesc::Act { c: out_c });
            in_c = out_c;
        }
    }
    NetDesc::new(3, in_h, in_w, layers)
}

fn conv_bn_act(
    in_c: usize,
    out_c: usize,
    geo: ConvGeometry,
    act: bool,
    rng: &mut SkyRng,
) -> Vec<Box<dyn Layer>> {
    let mut v: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new_no_bias(in_c, out_c, geo, rng)),
        Box::new(BatchNorm2d::new(out_c)),
    ];
    if act {
        v.push(Box::new(Activation::new(Act::Relu)));
    }
    v
}

fn basic_block(in_c: usize, out_c: usize, stride: usize, rng: &mut SkyRng) -> Residual {
    let mut main = Sequential::empty();
    for l in conv_bn_act(in_c, out_c, ConvGeometry::new(3, stride, 1), true, rng) {
        main.push(l);
    }
    for l in conv_bn_act(out_c, out_c, ConvGeometry::same3x3(), false, rng) {
        main.push(l);
    }
    if stride != 1 || in_c != out_c {
        let mut short = Sequential::empty();
        for l in conv_bn_act(in_c, out_c, ConvGeometry::new(1, stride, 0), false, rng) {
            short.push(l);
        }
        Residual::projected(main, short)
    } else {
        Residual::identity(main)
    }
}

fn bottleneck_block(in_c: usize, mid_c: usize, stride: usize, rng: &mut SkyRng) -> Residual {
    let out_c = mid_c * 4;
    let mut main = Sequential::empty();
    for l in conv_bn_act(in_c, mid_c, ConvGeometry::new(1, 1, 0), true, rng) {
        main.push(l);
    }
    for l in conv_bn_act(mid_c, mid_c, ConvGeometry::new(3, stride, 1), true, rng) {
        main.push(l);
    }
    for l in conv_bn_act(mid_c, out_c, ConvGeometry::new(1, 1, 0), false, rng) {
        main.push(l);
    }
    if stride != 1 || in_c != out_c {
        let mut short = Sequential::empty();
        for l in conv_bn_act(in_c, out_c, ConvGeometry::new(1, stride, 0), false, rng) {
            short.push(l);
        }
        Residual::projected(main, short)
    } else {
        Residual::identity(main)
    }
}

/// Builds a reduced-scale ResNet **feature extractor** with overall
/// stride 8 (stem stride 1, three strided stages) and widths divided by
/// `div`. Returns the network and its output channel count.
pub fn features(depth: ResNetDepth, div: usize, rng: &mut SkyRng) -> (Sequential, usize) {
    let widths: Vec<usize> = [64usize, 128, 256, 512]
        .iter()
        .map(|w| (w / div).max(4))
        .collect();
    let expansion = if depth.bottleneck() { 4 } else { 1 };
    let mut seq = Sequential::empty();
    // Reduced-scale stem: 3×3 stride-1 conv (a 7×7/2 stem would collapse
    // the small training inputs).
    for l in conv_bn_act(3, widths[0], ConvGeometry::same3x3(), true, rng) {
        seq.push(l);
    }
    let mut in_c = widths[0];
    for (stage, (&w, &n)) in widths.iter().zip(depth.blocks().iter()).enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            if depth.bottleneck() {
                seq.push(Box::new(bottleneck_block(in_c, w, stride, rng)));
                in_c = w * expansion;
            } else {
                seq.push(Box::new(basic_block(in_c, w, stride, rng)));
                in_c = w;
            }
        }
    }
    (seq, in_c)
}

/// Builds a reduced-scale ResNet **detector**: [`features`] followed by
/// the 10-channel point-wise back-end (same back-end as SkyNet, per the
/// Table 2 protocol).
pub fn detector(depth: ResNetDepth, div: usize, rng: &mut SkyRng) -> Sequential {
    let (mut seq, out_c) = features(depth, div, rng);
    seq.push(Box::new(Conv2d::new(
        out_c,
        HEAD_CHANNELS,
        ConvGeometry::pointwise(),
        rng,
    )));
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Layer, Mode};
    use skynet_tensor::{Shape, Tensor};

    #[test]
    fn paper_scale_params_match_table2() {
        // Table 2: 11.18 M / 21.28 M / 23.51 M backbone parameters.
        let cases = [
            (ResNetDepth::R18, 11.18e6),
            (ResNetDepth::R34, 21.28e6),
            (ResNetDepth::R50, 23.51e6),
        ];
        for (depth, want) in cases {
            let got = descriptor(depth, 224, 224).total_params() as f64;
            let err = (got - want).abs() / want;
            assert!(err < 0.02, "{}: {got} vs {want}", depth.name());
        }
    }

    #[test]
    fn detector_has_stride8_and_head_channels() {
        let mut rng = SkyRng::new(0);
        let mut net = detector(ResNetDepth::R18, 16, &mut rng);
        let x = Tensor::zeros(Shape::new(1, 3, 32, 64));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(1, HEAD_CHANNELS, 4, 8));
    }

    #[test]
    fn bottleneck_detector_runs() {
        let mut rng = SkyRng::new(1);
        let mut net = detector(ResNetDepth::R50, 16, &mut rng);
        let x = Tensor::zeros(Shape::new(1, 3, 16, 32));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().c, HEAD_CHANNELS);
    }

    #[test]
    fn deeper_nets_have_more_params_at_same_divisor() {
        let mut rng = SkyRng::new(2);
        let p18 = detector(ResNetDepth::R18, 8, &mut rng).param_count();
        let p34 = detector(ResNetDepth::R34, 8, &mut rng).param_count();
        let p50 = detector(ResNetDepth::R50, 8, &mut rng).param_count();
        assert!(p18 < p34 && p34 < p50, "{p18} {p34} {p50}");
    }

    #[test]
    fn features_train_roundtrip() {
        let mut rng = SkyRng::new(3);
        let (mut net, out_c) = features(ResNetDepth::R18, 16, &mut rng);
        let x = Tensor::ones(Shape::new(1, 3, 16, 16));
        let y = net.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape().c, out_c);
        let gx = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }
}
