//! A MobileNet-V1-style backbone (Howard et al., 2017).
//!
//! Several DAC-SDC entries in Table 1 start from MobileNet; we include a
//! reduced-scale variant as an extra compact baseline and as an ablation
//! reference point for the Bundle search (its DW/PW chain is the same
//! component family SkyNet's winning Bundle comes from, but with strided
//! depth-wise convolutions instead of max pooling and ReLU instead of
//! ReLU6).

use skynet_core::desc::{LayerDesc, NetDesc};
use skynet_core::skynet::HEAD_CHANNELS;
use skynet_nn::{Act, Activation, BatchNorm2d, Conv2d, DwConv2d, Sequential};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

/// (output channels, stride) plan of the stride-8 prefix of MobileNet-V1.
pub const PLAN: [(usize, usize); 6] = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 1)];

/// Paper-scale descriptor of the stride-8 prefix (stem + PLAN).
pub fn descriptor(in_h: usize, in_w: usize) -> NetDesc {
    let mut layers = vec![
        LayerDesc::Conv {
            in_c: 3,
            out_c: 32,
            k: 3,
            s: 2,
            p: 1,
        },
        LayerDesc::Bn { c: 32 },
        LayerDesc::Act { c: 32 },
    ];
    let mut in_c = 32usize;
    for (out_c, s) in PLAN {
        layers.extend([
            LayerDesc::DwConv {
                c: in_c,
                k: 3,
                s,
                p: 1,
            },
            LayerDesc::Bn { c: in_c },
            LayerDesc::Act { c: in_c },
            LayerDesc::Conv {
                in_c,
                out_c,
                k: 1,
                s: 1,
                p: 0,
            },
            LayerDesc::Bn { c: out_c },
            LayerDesc::Act { c: out_c },
        ]);
        in_c = out_c;
    }
    NetDesc::new(3, in_h, in_w, layers)
}

/// Reduced-scale feature extractor with stride 8; returns the network and
/// its output channel count.
pub fn features(div: usize, rng: &mut SkyRng) -> (Sequential, usize) {
    let mut seq = Sequential::empty();
    let stem = (32usize / div).max(4);
    seq.push(Box::new(Conv2d::new_no_bias(
        3,
        stem,
        ConvGeometry::new(3, 2, 1),
        rng,
    )));
    seq.push(Box::new(BatchNorm2d::new(stem)));
    seq.push(Box::new(Activation::new(Act::Relu)));
    let mut in_c = stem;
    for (out_c, s) in PLAN {
        let out_c = (out_c / div).max(4);
        seq.push(Box::new(DwConv2d::new(
            in_c,
            ConvGeometry::new(3, s, 1),
            rng,
        )));
        seq.push(Box::new(BatchNorm2d::new(in_c)));
        seq.push(Box::new(Activation::new(Act::Relu)));
        seq.push(Box::new(Conv2d::pointwise(in_c, out_c, rng)));
        seq.push(Box::new(BatchNorm2d::new(out_c)));
        seq.push(Box::new(Activation::new(Act::Relu)));
        in_c = out_c;
    }
    (seq, in_c)
}

/// Reduced-scale MobileNet detector with the shared 10-channel back-end.
pub fn detector(div: usize, rng: &mut SkyRng) -> Sequential {
    let (mut seq, out_c) = features(div, rng);
    seq.push(Box::new(Conv2d::new(
        out_c,
        HEAD_CHANNELS,
        ConvGeometry::pointwise(),
        rng,
    )));
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Layer, Mode};
    use skynet_tensor::{Shape, Tensor};

    #[test]
    fn detector_stride_8() {
        let mut rng = SkyRng::new(0);
        let mut net = detector(8, &mut rng);
        let x = Tensor::zeros(Shape::new(1, 3, 32, 64));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(1, HEAD_CHANNELS, 4, 8));
    }

    #[test]
    fn descriptor_is_mostly_pointwise_params() {
        let d = descriptor(160, 320);
        let pw: usize = d
            .layers
            .iter()
            .filter(|l| matches!(l, LayerDesc::Conv { k: 1, .. }))
            .map(|l| l.params())
            .sum();
        assert!(pw * 10 > d.total_params() * 8);
    }

    #[test]
    fn features_train_roundtrip() {
        let mut rng = SkyRng::new(1);
        let (mut net, _) = features(8, &mut rng);
        let x = Tensor::ones(Shape::new(1, 3, 16, 16));
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }
}
