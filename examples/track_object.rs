//! Object tracking with a SkyNet-backbone Siamese tracker (§7): train on
//! synthetic sequences, then follow a target frame by frame.
//!
//! ```text
//! cargo run --release --example track_object
//! ```

use skynet::data::got::{GotConfig, GotGen};
use skynet::nn::{LrSchedule, Sgd};
use skynet::track::backbone::BackboneKind;
use skynet::track::eval::{evaluate, Tracker};
use skynet::track::siamrpn::{train_on_sequences, SiamConfig, SiamRpn};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GotConfig {
        seq_len: 16,
        ..Default::default()
    };
    let mut gen = GotGen::new(cfg);
    let train_seqs = gen.generate(16);
    let eval_seqs = gen.generate(6);

    let mut tracker = SiamRpn::new(SiamConfig::new(BackboneKind::SkyNet));
    println!("tracker: {} parameters", tracker.param_count());

    let mut opt = Sgd::new(LrSchedule::Constant(1e-3), 0.9, 1e-4);
    for epoch in 0..20 {
        let loss = train_on_sequences(&mut tracker, &train_seqs, 1, &mut opt, 100 + epoch)?;
        if epoch % 5 == 0 {
            println!("epoch {epoch:>2}: pair loss {loss:.3}");
        }
    }

    // Follow one held-out sequence frame by frame.
    let seq = &eval_seqs[0];
    tracker.init(&seq.frames[0], &seq.boxes[0])?;
    println!("\ntracking a held-out sequence ({} frames):", seq.len());
    for (i, frame) in seq.frames[1..].iter().enumerate() {
        let pred = tracker.update(frame)?;
        let gt = &seq.boxes[i + 1];
        println!(
            "  frame {:>2}: pred ({:.2}, {:.2}) gt ({:.2}, {:.2}) IoU {:.2}",
            i + 1,
            pred.cx,
            pred.cy,
            gt.cx,
            gt.cy,
            pred.iou(gt)
        );
    }

    // GOT-10k metrics over the evaluation set.
    let report = evaluate(&mut tracker, &eval_seqs)?;
    println!(
        "\n{}: AO {:.3}, SR@0.50 {:.3}, SR@0.75 {:.3}, {:.1} FPS",
        report.label, report.metrics.ao, report.metrics.sr50, report.metrics.sr75, report.fps
    );
    let _ = tracker.label();
    Ok(())
}
