//! The bottom-up design flow end to end (Fig. 3): Bundle enumeration and
//! Pareto selection, group-based PSO, feature addition.
//!
//! ```text
//! cargo run --release --example nas_search
//! ```

use skynet::core::head::Anchors;
use skynet::data::dacsdc::{DacSdc, DacSdcConfig};
use skynet::nas::flow::{self, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small frames keep each candidate's fast-training in CPU seconds.
    let mut gcfg = DacSdcConfig::default().trainable();
    gcfg.height = 24;
    gcfg.width = 48;
    gcfg.sizes.min_ratio = 0.02;
    let mut gen = DacSdc::new(gcfg);
    let (train, val) = gen.generate_split(96, 32);

    let mut cfg = FlowConfig::default();
    cfg.stage1.epochs = 3;
    cfg.stage2.particles_per_group = 3;
    cfg.stage2.iterations = 3;
    cfg.stage2.base_epochs = 2;
    cfg.stage2.depth = 5; // SkyNet chain depth, so Stage 3 can map it
    cfg.stage2.pools = 3;
    cfg.stage2.channel_range = (4, 32);
    cfg.stage3.epochs = 4;
    cfg.stage2_groups = 2;

    println!("Stage 1: Bundle selection and evaluation");
    let outcome = flow::run(&cfg, &train, &val, &Anchors::dac_sdc())?;
    for e in &outcome.bundle_evals {
        println!(
            "  {:48} acc {:.3}  FPGA latency {:.1} ms  feasible {}",
            e.bundle.describe(),
            e.accuracy,
            e.latency_ms,
            e.feasible
        );
    }
    println!("Pareto frontier ({} bundles):", outcome.frontier.len());
    for e in &outcome.frontier {
        println!("  {}", e.bundle.describe());
    }

    println!("\nStage 2: group-based PSO winner");
    println!("  {}", outcome.winner);
    println!("  fitness {:.3}", outcome.winner_fitness);

    if !outcome.feature_trials.is_empty() {
        println!("\nStage 3: feature addition (bypass + reorg, ReLU6)");
        for t in &outcome.feature_trials {
            println!(
                "  SkyNet {} - {:6}  IoU {:.3}",
                t.variant,
                t.act.to_string(),
                t.accuracy
            );
        }
        let best = &outcome.feature_trials[0];
        println!(
            "\nselected design: SkyNet {} with {}",
            best.variant, best.act
        );
    }
    Ok(())
}
