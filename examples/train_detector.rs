//! Full detector training run with augmentation, multi-scale training and
//! checkpointing — the §6.1 protocol end to end.
//!
//! ```text
//! cargo run --release --example train_detector [epochs]
//! ```

use skynet::core::detector::Detector;
use skynet::core::head::Anchors;
use skynet::core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet::core::trainer::{evaluate, TrainConfig, Trainer};
use skynet::core::Sample;
use skynet::data::aug::{AugmentConfig, Augmenter};
use skynet::data::dacsdc::{DacSdc, DacSdcConfig};
use skynet::nn::{save_params, Act, LrSchedule, Sgd};
use skynet::tensor::rng::SkyRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    // Data + §6.1 augmentation (distort, jitter, crop, resize).
    let mut cfg = DacSdcConfig::default().trainable();
    cfg.height = 48;
    cfg.width = 96;
    let mut gen = DacSdc::new(cfg);
    let (base_train, val) = gen.generate_split(256, 64);
    let mut aug = Augmenter::new(AugmentConfig::default(), 11);
    let train: Vec<Sample> = base_train
        .iter()
        .flat_map(|s| [s.clone(), aug.apply(s)])
        .collect();
    println!(
        "{} training samples after augmentation, {} validation",
        train.len(),
        val.len()
    );

    let mut rng = SkyRng::new(0);
    let net_cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut detector = Detector::new(Box::new(SkyNet::new(net_cfg, &mut rng)), Anchors::dac_sdc());

    let steps = epochs * train.len().div_ceil(8);
    let mut opt = Sgd::new(
        LrSchedule::Exponential {
            start: 5e-3,
            end: 1e-4,
            steps,
        },
        0.9,
        1e-4,
    );
    let mut trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: 8,
        // Multi-scale training around the base resolution (§6.1).
        scales: vec![(40, 80), (48, 96), (56, 112)],
        seed: 2,
    });
    let stats = trainer.train(&mut detector, &train, &mut opt)?;
    for s in stats.iter().step_by(stats.len().div_ceil(10).max(1)) {
        println!(
            "epoch {:>3}: loss {:.3} (lr {:.2e})",
            s.epoch, s.mean_loss, s.lr
        );
    }

    let iou = evaluate(&mut detector, &val)?;
    println!("validation mean IoU after {epochs} epochs: {iou:.3}");

    let path = std::env::temp_dir().join("skynet_c.ckpt");
    save_params(detector.backbone_mut(), &path)?;
    println!("checkpoint written to {}", path.display());
    Ok(())
}
