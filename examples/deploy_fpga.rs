//! The FPGA deployment path (§6.4): train → quantize → map onto the
//! Ultra96 shared-IP accelerator → tile → score like the contest.
//!
//! ```text
//! cargo run --release --example deploy_fpga
//! ```

use skynet::core::detector::Detector;
use skynet::core::head::Anchors;
use skynet::core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet::core::trainer::{evaluate, evaluate_mode, TrainConfig, Trainer};
use skynet::data::dacsdc::{DacSdc, DacSdcConfig};
use skynet::hw::energy::PowerModel;
use skynet::hw::fpga::{estimate, FpgaDevice};
use skynet::hw::quant::{apply_scheme, QuantScheme};
use skynet::hw::score::{score_field, table6_entries, Entry, Track};
use skynet::hw::tiling::plan;
use skynet::nn::{Act, LrSchedule, Sgd};
use skynet::tensor::rng::SkyRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a reduced-scale SkyNet C.
    let mut gcfg = DacSdcConfig::default().trainable();
    gcfg.height = 48;
    gcfg.width = 96;
    let mut gen = DacSdc::new(gcfg);
    let (train, val) = gen.generate_split(192, 48);
    let mut rng = SkyRng::new(0);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut detector = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
    let mut opt = Sgd::new(
        LrSchedule::Exponential {
            start: 5e-3,
            end: 1e-4,
            steps: 20 * 24,
        },
        0.9,
        1e-4,
    );
    Trainer::new(TrainConfig {
        epochs: 20,
        batch_size: 8,
        scales: vec![],
        seed: 3,
    })
    .train(&mut detector, &train, &mut opt)?;
    let float_iou = evaluate(&mut detector, &val)?;
    println!("float32 validation IoU: {float_iou:.3}");

    // 2. Quantize with the contest scheme (Table 7, scheme 1: FM9/W11).
    let scheme = QuantScheme::new(11, 9);
    let mode = apply_scheme(detector.backbone_mut(), scheme);
    let quant_iou = evaluate_mode(&mut detector, &val, 16, mode)?;
    println!("{scheme} validation IoU: {quant_iou:.3}");

    // 3. Map the paper-scale network onto the Ultra96.
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let est = estimate(&desc, &FpgaDevice::ultra96(), scheme, 4);
    println!(
        "Ultra96 mapping: {:.1} ms/frame ({:.1} FPS), {} DSP, {} BRAM18, {} LUT, feasible: {}",
        est.latency_ms, est.fps, est.dsp, est.bram18, est.luts, est.feasible
    );

    // 4. Batch-and-tiling plan (Fig. 9).
    let p = plan(&desc);
    println!(
        "tiling: {}/{} layers run in 4-image mode; buffer utilization {:.2} -> {:.2}; \
         weight reuse {:.1}x",
        p.merged_layers(),
        p.merged.len(),
        p.utilization_plain,
        p.utilization_tiled,
        p.weight_reuse
    );

    // 5. Contest scoring against the published FPGA field.
    let power = PowerModel::ultra96().power_w(0.95);
    let mut entries = table6_entries();
    entries.push(Entry::new(
        "ours (synthetic task)",
        quant_iou as f64,
        est.fps,
        power,
    ));
    println!("\nDAC-SDC FPGA-track scoring (Eqs. 3-5):");
    for s in score_field(&entries, Track::Fpga) {
        println!(
            "  {:26} IoU {:.3}  {:6.2} FPS  {:5.2} W  total {:.3}",
            s.entry.name, s.entry.iou, s.entry.fps, s.entry.power_w, s.total_score
        );
    }
    Ok(())
}
