//! Five-minute tour: build SkyNet C, train it briefly on the synthetic
//! DAC-SDC set, and detect an object.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skynet::core::detector::Detector;
use skynet::core::head::Anchors;
use skynet::core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet::core::trainer::{evaluate, TrainConfig, Trainer};
use skynet::data::dacsdc::{DacSdc, DacSdcConfig};
use skynet::nn::{Act, Layer, LrSchedule, Sgd};
use skynet::tensor::rng::SkyRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic DAC-SDC data: single small object per UAV-style frame.
    let mut cfg = DacSdcConfig::default().trainable();
    cfg.height = 48;
    cfg.width = 96;
    let mut gen = DacSdc::new(cfg);
    let (train, val) = gen.generate_split(128, 32);
    println!(
        "generated {} training / {} validation frames",
        train.len(),
        val.len()
    );

    // 2. SkyNet model C (Table 3) at 1/8 width for CPU training.
    let mut rng = SkyRng::new(0);
    let net_cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut net = SkyNet::new(net_cfg, &mut rng);
    println!("model: {} ({} parameters)", net.name(), net.param_count());
    let mut detector = Detector::new(Box::new(net), Anchors::dac_sdc());

    // 3. Train for a handful of epochs (the paper's SGD recipe, scaled).
    let mut opt = Sgd::new(
        LrSchedule::Exponential {
            start: 5e-3,
            end: 1e-4,
            steps: 15 * 16,
        },
        0.9,
        1e-4,
    );
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 15,
        batch_size: 8,
        scales: vec![],
        seed: 1,
    });
    let stats = trainer.train(&mut detector, &train, &mut opt)?;
    println!(
        "trained {} epochs, loss {:.3} -> {:.3}",
        stats.len(),
        stats.first().map(|s| s.mean_loss).unwrap_or(0.0),
        stats.last().map(|s| s.mean_loss).unwrap_or(0.0)
    );

    // 4. Evaluate with the DAC-SDC metric (mean IoU, Eq. 2).
    let iou = evaluate(&mut detector, &val)?;
    println!("validation mean IoU: {iou:.3}");

    // 5. Detect on one frame.
    let sample = &val[0];
    let det = detector.predict(&sample.image)?[0];
    println!(
        "frame 0: ground truth ({:.2}, {:.2}, {:.2}, {:.2})",
        sample.bbox.cx, sample.bbox.cy, sample.bbox.w, sample.bbox.h
    );
    println!(
        "         predicted    ({:.2}, {:.2}, {:.2}, {:.2}) conf {:.2}, IoU {:.2}",
        det.bbox.cx,
        det.bbox.cy,
        det.bbox.w,
        det.bbox.h,
        det.confidence,
        det.bbox.iou(&sample.bbox)
    );
    Ok(())
}
