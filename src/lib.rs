//! # skynet
//!
//! Facade crate for the SkyNet-rs workspace: a pure-Rust reproduction of
//! *"SkyNet: a Hardware-Efficient Method for Object Detection and Tracking
//! on Embedded Systems"* (Zhang et al., MLSYS 2020).
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! * [`tensor`] — NCHW tensors and conv/pool/reorg kernels (fwd + bwd)
//! * [`nn`] — layers, graphs, SGD training
//! * [`core`] — the SkyNet architecture, detection head, IoU, trainer
//! * [`zoo`] — baseline backbones (ResNet, VGG, AlexNet, MobileNet)
//! * [`data`] — synthetic DAC-SDC and GOT-style datasets
//! * [`hw`] — quantization, FPGA/GPU models, DAC-SDC scoring, pipeline
//! * [`serve`] — batched async serving: replicas, dynamic batching, shedding
//! * [`nas`] — the bottom-up design flow (Bundles + group-based PSO)
//! * [`track`] — Siamese trackers (SiamRPN++-style, SiamMask-style)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use skynet_core as core;
pub use skynet_data as data;
pub use skynet_hw as hw;
pub use skynet_nas as nas;
pub use skynet_nn as nn;
pub use skynet_serve as serve;
pub use skynet_tensor as tensor;
pub use skynet_track as track;
pub use skynet_zoo as zoo;
