//! Integration: the bottom-up NAS flow over synthetic data, and the
//! contest scoring fed by the hardware models.

use skynet::core::head::Anchors;
use skynet::core::skynet::{SkyNetConfig, Variant};
use skynet::data::dacsdc::{DacSdc, DacSdcConfig};
use skynet::hw::energy::PowerModel;
use skynet::hw::fpga;
use skynet::hw::gpu;
use skynet::hw::quant::QuantScheme;
use skynet::hw::score::{score_field, Entry, Track};
use skynet::nas::flow::{self, FlowConfig};
use skynet::nn::Act;

#[test]
fn bottom_up_flow_selects_a_feasible_winner() {
    let mut gcfg = DacSdcConfig::default().trainable();
    gcfg.height = 16;
    gcfg.width = 32;
    gcfg.sizes.min_ratio = 0.05;
    let mut gen = DacSdc::new(gcfg);
    let (train, val) = gen.generate_split(16, 8);

    let mut cfg = FlowConfig::default();
    cfg.stage1.epochs = 1;
    // A realistic sketch depth: at DAC-SDC-like widths the dense-conv
    // bundle's compute dominates the shared memory traffic, which is the
    // regime where DW+PW wins on the FPGA (at toy widths both bundles are
    // memory-bound and the comparison is a coin flip).
    cfg.stage1.sketch_channels = vec![4, 8, 16];
    cfg.stage1.sketch_pools = vec![true, true, false];
    cfg.stage2.particles_per_group = 2;
    cfg.stage2.iterations = 1;
    cfg.stage2.base_epochs = 1;
    cfg.stage2.depth = 3;
    cfg.stage2.channel_range = (4, 10);
    cfg.stage2.pools = 2;
    cfg.stage2_groups = 2;

    let outcome = flow::run(&cfg, &train, &val, &Anchors::dac_sdc()).expect("flow");
    assert!(!outcome.bundle_evals.is_empty());
    // Stage 1 must find the DW+PW bundle cheaper than plain Conv3 on the
    // FPGA model (the core hardware-awareness claim).
    let lat = |needle: &str| {
        outcome
            .bundle_evals
            .iter()
            .find(|e| e.bundle.describe().starts_with(needle))
            .map(|e| e.latency_ms)
            .expect("bundle present")
    };
    assert!(lat("DW-Conv3+BN") < lat("Conv3+BN"));
    assert!(outcome.winner_fitness.is_finite());
}

#[test]
fn hardware_models_feed_contest_scoring() {
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let fpga_est = fpga::estimate(
        &desc,
        &fpga::FpgaDevice::ultra96(),
        QuantScheme::new(11, 9),
        4,
    );
    let gpu_est = gpu::estimate(&desc, &gpu::GpuDevice::tx2());

    let entries = vec![
        Entry::new(
            "fpga-entry",
            0.70,
            fpga_est.fps,
            PowerModel::ultra96().power_w(0.9),
        ),
        Entry::new(
            "gpu-entry",
            0.70,
            gpu_est.fps,
            PowerModel::tx2().power_w(0.9),
        ),
    ];
    let scored = score_field(&entries, Track::Fpga);
    assert_eq!(scored.len(), 2);
    for s in &scored {
        // ES has no upper cap (an entry far more efficient than the field
        // average exceeds 1), but scores must be positive and finite.
        assert!(s.total_score > 0.0 && s.total_score.is_finite());
        assert!(s.energy_j > 0.0);
    }
    // The lower-energy entry must hold the higher energy score.
    let by_energy = |n: &str| scored.iter().find(|s| s.entry.name == n).unwrap();
    let (a, b) = (by_energy("fpga-entry"), by_energy("gpu-entry"));
    if a.energy_j < b.energy_j {
        assert!(a.energy_score >= b.energy_score);
    } else {
        assert!(b.energy_score >= a.energy_score);
    }
}
