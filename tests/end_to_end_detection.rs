//! Integration: synthetic data → SkyNet training → evaluation →
//! quantization → hardware estimate, across five crates.

use skynet::core::detector::Detector;
use skynet::core::head::Anchors;
use skynet::core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet::core::trainer::{evaluate, evaluate_mode, TrainConfig, Trainer};
use skynet::data::dacsdc::{DacSdc, DacSdcConfig};
use skynet::hw::fpga::{estimate, FpgaDevice};
use skynet::hw::quant::{apply_scheme, QuantScheme};
use skynet::nn::{Act, LrSchedule, Sgd};
use skynet::tensor::rng::SkyRng;

fn quick_data(
    n_train: usize,
    n_val: usize,
) -> (Vec<skynet::core::Sample>, Vec<skynet::core::Sample>) {
    let mut cfg = DacSdcConfig::default().trainable();
    cfg.height = 32;
    cfg.width = 64;
    cfg.sizes.min_ratio = 0.02; // resolvable objects for the short budget
    cfg.distractor_prob = 0.0;
    let mut gen = DacSdc::new(cfg);
    gen.generate_split(n_train, n_val)
}

#[test]
fn training_improves_over_untrained_and_quantization_degrades_gracefully() {
    let (train, val) = quick_data(64, 24);
    let mut rng = SkyRng::new(1);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut detector = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());

    let untrained = evaluate(&mut detector, &val).expect("eval");
    let mut opt = Sgd::new(LrSchedule::Constant(5e-3), 0.9, 1e-4);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 15,
        batch_size: 8,
        scales: vec![],
        seed: 2,
    });
    trainer
        .train(&mut detector, &train, &mut opt)
        .expect("train");
    let trained = evaluate(&mut detector, &val).expect("eval");
    // Seeds are pinned and the execution engine is bit-deterministic for
    // any `SKYNET_THREADS`, so `trained` and `untrained` are exact
    // reproducible values, not samples — this margin is a regression pin,
    // not a statistical bet.
    assert!(
        trained > untrained + 0.05,
        "training must help: {untrained:.3} -> {trained:.3}"
    );

    // Quantize with the contest scheme; accuracy should survive within a
    // modest drop (Table 7's scheme-1 behaviour).
    let mode = apply_scheme(detector.backbone_mut(), QuantScheme::new(11, 9));
    let quant = evaluate_mode(&mut detector, &val, 16, mode).expect("eval");
    assert!(
        quant > trained - 0.1,
        "9/11-bit quantization should be gentle: {trained:.3} -> {quant:.3}"
    );
}

#[test]
fn paper_scale_model_fits_the_contest_device() {
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let est = estimate(&desc, &FpgaDevice::ultra96(), QuantScheme::new(11, 9), 4);
    assert!(est.feasible, "{est:?}");
    assert!(est.fps > 5.0 && est.fps < 100.0);
}
