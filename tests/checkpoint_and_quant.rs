//! Integration: checkpointing a full SkyNet and the monotonicity of the
//! feature-map quantization simulation.

use skynet::core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet::nn::{load_params, save_params, Act, Layer, Mode};
use skynet::tensor::rng::SkyRng;
use skynet::tensor::{Shape, Tensor};

fn sample_input() -> Tensor {
    let s = Shape::new(1, 3, 24, 48);
    let mut rng = SkyRng::new(77);
    Tensor::from_vec(s, (0..s.numel()).map(|_| rng.uniform()).collect()).expect("length matches")
}

#[test]
fn skynet_checkpoint_roundtrips_through_disk() {
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut rng_a = SkyRng::new(1);
    let mut a = SkyNet::new(cfg.clone(), &mut rng_a);
    let mut rng_b = SkyRng::new(999); // different init
    let mut b = SkyNet::new(cfg, &mut rng_b);

    let x = sample_input();
    let ya = a.forward(&x, Mode::Eval).expect("forward");
    let yb_before = b.forward(&x, Mode::Eval).expect("forward");
    assert!(
        ya.sub(&yb_before).expect("same shape").max_abs() > 1e-6,
        "different inits must differ"
    );

    let path = std::env::temp_dir().join(format!("skynet-it-{}.ckpt", std::process::id()));
    save_params(&mut a, &path).expect("save");
    load_params(&mut b, &path).expect("load");
    let yb_after = b.forward(&x, Mode::Eval).expect("forward");
    assert!(
        ya.sub(&yb_after).expect("same shape").max_abs() < 1e-6,
        "loaded model must match the saved one exactly"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn quantized_inference_error_shrinks_with_fm_bits() {
    let cfg = SkyNetConfig::new(Variant::B, Act::Relu6).with_width_divisor(8);
    let mut rng = SkyRng::new(3);
    let mut net = SkyNet::new(cfg, &mut rng);
    let x = sample_input();
    let y_float = net.forward(&x, Mode::Eval).expect("forward");
    let mut last_err = f32::MAX;
    for bits in [6u8, 8, 10, 12] {
        let y_q = net
            .forward(&x, Mode::QuantEval { fm_bits: bits })
            .expect("forward");
        let err = y_float.sub(&y_q).expect("same shape").max_abs();
        // Quantization error is only monotone in expectation, so the 5 %
        // relative margin alone is brittle once errors approach the step
        // size. Allow half a quantization step of absolute slack at the
        // current bit depth on top of it.
        let step = y_float.max_abs() / ((1u32 << (bits - 1)) - 1) as f32;
        assert!(
            err <= last_err * 1.05 + step * 0.5,
            "error should shrink with bits: {bits} bits gave {err}, previous {last_err}"
        );
        last_err = err;
    }
    // 12-bit feature maps should be close to float through this depth.
    assert!(last_err < y_float.max_abs() * 0.1, "12-bit err {last_err}");
}

#[test]
fn relu6_bounds_survive_quantized_inference() {
    // The §5.2 argument: ReLU6 clips every activation to [0, 6], so the
    // per-tensor quantization scale is bounded and outputs stay sane even
    // at 6 bits. Verify the quantized network still produces finite,
    // bounded predictions.
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut rng = SkyRng::new(4);
    let mut net = SkyNet::new(cfg, &mut rng);
    let x = sample_input();
    let y = net
        .forward(&x, Mode::QuantEval { fm_bits: 6 })
        .expect("forward");
    for &v in y.as_slice() {
        assert!(v.is_finite());
    }
    assert!(y.max_abs() < 1e3);
}
