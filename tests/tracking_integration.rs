//! Integration: Siamese trackers over synthetic GOT sequences with both
//! tracker variants and multiple backbones.

use skynet::data::got::{GotConfig, GotGen};
use skynet::nn::{LrSchedule, Sgd};
use skynet::track::backbone::BackboneKind;
use skynet::track::eval::evaluate;
use skynet::track::siammask::SiamMask;
use skynet::track::siamrpn::{train_on_sequences, SiamConfig, SiamRpn};

fn sequences(n: usize, len: usize, seed: u64) -> Vec<skynet::data::got::TrackSequence> {
    let cfg = GotConfig {
        seq_len: len,
        distractor_prob: 0.0,
        seed,
        ..Default::default()
    };
    let mut gen = GotGen::new(cfg);
    gen.generate(n)
}

#[test]
fn siamrpn_all_backbones_track_without_panicking() {
    let eval_seqs = sequences(2, 5, 1);
    for kind in [
        BackboneKind::AlexNet,
        BackboneKind::ResNet50,
        BackboneKind::SkyNet,
    ] {
        let mut tracker = SiamRpn::new(SiamConfig {
            div: 32,
            ..SiamConfig::new(kind)
        });
        let report = evaluate(&mut tracker, &eval_seqs).expect("evaluation");
        assert_eq!(report.sequences, 2, "{}", kind.name());
        assert!(report.fps > 0.0);
    }
}

#[test]
fn short_training_keeps_tracker_on_target() {
    let train_seqs = sequences(6, 8, 2);
    let eval_seqs = sequences(3, 8, 3);
    let mut tracker = SiamRpn::new(SiamConfig {
        div: 16,
        ..SiamConfig::new(BackboneKind::SkyNet)
    });
    let mut opt = Sgd::new(LrSchedule::Constant(1e-3), 0.9, 1e-4);
    for _ in 0..6 {
        train_on_sequences(&mut tracker, &train_seqs, 1, &mut opt, 5).expect("train");
    }
    let report = evaluate(&mut tracker, &eval_seqs).expect("evaluation");
    // Smoothly moving targets with a centered search window: even a short
    // training run should keep meaningful overlap.
    assert!(report.metrics.ao > 0.1, "AO {:.3}", report.metrics.ao);
}

#[test]
fn siammask_refinement_produces_valid_boxes() {
    let eval_seqs = sequences(2, 5, 4);
    let mut tracker = SiamMask::new(SiamConfig {
        div: 32,
        ..SiamConfig::new(BackboneKind::SkyNet)
    });
    let report = evaluate(&mut tracker, &eval_seqs).expect("evaluation");
    assert!(report.label.contains("SiamMask"));
    assert!((0.0..=1.0).contains(&report.metrics.ao));
}
